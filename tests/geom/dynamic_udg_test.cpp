// DynamicUdg: incremental UDG edge maintenance under joins, departures,
// and waypoint moves. Ground truth is the brute-force O(n²) definition —
// { {u,v} : active(u) && active(v) && dist(u,v) <= radius } — recomputed
// after every mutation, plus exact edge-delta accounting.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "geom/dynamic.h"
#include "geom/point.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::geom {
namespace {

using graph::Edge;
using graph::NodeId;

std::vector<Edge> brute_force_edges(const DynamicUdg& d) {
  std::vector<Edge> edges;
  const double r_sq = d.radius() * d.radius();
  for (NodeId u = 0; u < d.n(); ++u) {
    if (!d.active(u)) continue;
    for (NodeId v = u + 1; v < d.n(); ++v) {
      if (!d.active(v)) continue;
      if (dist_sq(d.positions()[static_cast<std::size_t>(u)],
                  d.positions()[static_cast<std::size_t>(v)]) <= r_sq) {
        edges.push_back({u, v});
      }
    }
  }
  return edges;
}

TEST(DynamicUdg, StartsAsTheBuiltDeployment) {
  util::Rng rng(5);
  const UnitDiskGraph udg = build_udg(uniform_points(40, 4.0, rng), 1.0);
  const DynamicUdg dyn(udg);
  EXPECT_EQ(dyn.n(), udg.n());
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));
  EXPECT_EQ(dyn.graph().m(), static_cast<std::size_t>(udg.graph.m()));
}

TEST(DynamicUdg, JoinLinksExactlyTheInRangeNodes) {
  const UnitDiskGraph udg = build_udg(
      {{0.0, 0.0}, {0.9, 0.0}, {3.0, 3.0}}, 1.0);
  DynamicUdg dyn(udg);
  graph::EdgeDelta delta;
  const NodeId id = dyn.node_join({0.5, 0.0}, delta);
  EXPECT_EQ(id, 3);
  EXPECT_TRUE(delta.removed.empty());
  const std::vector<Edge> expected{{0, 3}, {1, 3}};
  EXPECT_EQ(delta.added, expected);
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));
}

TEST(DynamicUdg, LeaveIsolatesAndStaysIsolated) {
  const UnitDiskGraph udg = build_udg(
      {{0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}}, 1.0);
  DynamicUdg dyn(udg);
  graph::EdgeDelta delta;
  dyn.node_leave(1, delta);
  const std::vector<Edge> expected{{0, 1}, {1, 2}};
  EXPECT_EQ(delta.removed, expected);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_FALSE(dyn.active(1));
  EXPECT_EQ(dyn.graph().degree(1), 0);
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));

  // Re-leaving (and leaving out-of-range ids) is a clamped no-op.
  graph::EdgeDelta again;
  dyn.node_leave(1, again);
  dyn.node_leave(-1, again);
  dyn.node_leave(99, again);
  EXPECT_TRUE(again.empty());

  // A move toward the departed node must not resurrect its edges.
  graph::EdgeDelta move_delta;
  dyn.node_move(0, {0.5, 0.01}, move_delta);
  EXPECT_FALSE(dyn.graph().has_edge(0, 1));
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));
}

TEST(DynamicUdg, MoveEmitsExactDeltas) {
  const UnitDiskGraph udg = build_udg(
      {{0.0, 0.0}, {0.8, 0.0}, {2.0, 0.0}}, 1.0);
  DynamicUdg dyn(udg);
  // 0 slides from near 1 to near 2: loses {0,1}, gains {0,2}.
  graph::EdgeDelta delta;
  dyn.node_move(0, {1.9, 0.0}, delta);
  EXPECT_EQ(delta.removed, (std::vector<Edge>{{0, 1}}));
  EXPECT_EQ(delta.added, (std::vector<Edge>{{0, 2}}));
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));

  // A move that keeps the same in-range set is a structural no-op.
  graph::EdgeDelta still;
  dyn.node_move(0, {2.1, 0.0}, still);
  EXPECT_TRUE(still.added.empty());
  EXPECT_EQ(dyn.graph().edges(), brute_force_edges(dyn));
}

// Randomized differential: hundreds of mixed mutations, brute-force
// equality after every single one, and to_udg() freeze equivalence at the
// end. Moves intentionally cross many grid cells.
TEST(DynamicUdg, RandomMutationsMatchBruteForce) {
  util::Rng rng(99);
  const UnitDiskGraph udg = build_udg(uniform_points(30, 3.0, rng), 1.0);
  DynamicUdg dyn(udg);
  for (int step = 0; step < 400; ++step) {
    graph::EdgeDelta delta;
    const double u = rng.uniform01();
    if (u < 0.25) {
      dyn.node_join({rng.uniform(-0.5, 3.5), rng.uniform(-0.5, 3.5)}, delta);
    } else if (u < 0.55) {
      dyn.node_leave(
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(dyn.n()))),
          delta);
    } else {
      dyn.node_move(
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(dyn.n()))),
          {rng.uniform(-0.5, 3.5), rng.uniform(-0.5, 3.5)}, delta);
    }
    ASSERT_EQ(dyn.graph().edges(), brute_force_edges(dyn)) << "step " << step;
    // Deltas really are deltas: added edges exist, removed ones don't.
    for (const Edge& e : delta.added) {
      ASSERT_TRUE(dyn.graph().has_edge(e.u, e.v));
    }
    for (const Edge& e : delta.removed) {
      ASSERT_FALSE(dyn.graph().has_edge(e.u, e.v));
    }
  }
  const UnitDiskGraph frozen = dyn.to_udg();
  EXPECT_EQ(frozen.n(), dyn.n());
  EXPECT_EQ(frozen.positions.size(), dyn.positions().size());
  EXPECT_EQ(static_cast<std::size_t>(frozen.graph.m()), dyn.graph().m());
}

}  // namespace
}  // namespace ftc::geom
