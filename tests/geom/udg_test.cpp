#include "geom/udg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/properties.h"

namespace ftc::geom {
namespace {

using graph::NodeId;

TEST(BuildUdg, EdgeIffWithinRadius) {
  const std::vector<Point> pts{{0, 0}, {0.5, 0}, {2.0, 0}, {0.5, 0.5}};
  const UnitDiskGraph udg = build_udg(pts, 1.0);
  EXPECT_TRUE(udg.graph.has_edge(0, 1));    // dist 0.5
  EXPECT_FALSE(udg.graph.has_edge(0, 2));   // dist 2.0
  EXPECT_TRUE(udg.graph.has_edge(0, 3));    // dist ~0.707
  EXPECT_TRUE(udg.graph.has_edge(1, 3));    // dist 0.5
  EXPECT_FALSE(udg.graph.has_edge(2, 3));   // dist ~1.58
}

TEST(BuildUdg, BruteForceAgreement) {
  util::Rng rng(7);
  const auto pts = uniform_points(200, 5.0, rng);
  const UnitDiskGraph udg = build_udg(pts, 1.0);
  for (NodeId u = 0; u < udg.n(); ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < udg.n(); ++v) {
      const bool expected =
          dist(pts[static_cast<std::size_t>(u)],
               pts[static_cast<std::size_t>(v)]) <= 1.0;
      EXPECT_EQ(udg.graph.has_edge(u, v), expected)
          << "pair (" << u << "," << v << ")";
    }
  }
}

TEST(BuildUdg, ExactBoundaryDistanceIsEdge) {
  const std::vector<Point> pts{{0, 0}, {1.0, 0}};
  const UnitDiskGraph udg = build_udg(pts, 1.0);
  EXPECT_TRUE(udg.graph.has_edge(0, 1));
}

TEST(BuildUdg, CustomRadius) {
  const std::vector<Point> pts{{0, 0}, {1.5, 0}};
  EXPECT_FALSE(build_udg(pts, 1.0).graph.has_edge(0, 1));
  EXPECT_TRUE(build_udg(pts, 2.0).graph.has_edge(0, 1));
}

TEST(BuildUdg, EmptyInput) {
  const UnitDiskGraph udg = build_udg({}, 1.0);
  EXPECT_EQ(udg.n(), 0);
}

TEST(UnitDiskGraph, DistanceMatchesPoints) {
  const std::vector<Point> pts{{0, 0}, {0.6, 0.8}};
  const UnitDiskGraph udg = build_udg(pts, 2.0);
  EXPECT_NEAR(udg.distance(0, 1), 1.0, 1e-12);
}

TEST(UnitDiskGraph, NeighborsWithinFiltersByDistance) {
  const std::vector<Point> pts{{0, 0}, {0.2, 0}, {0.9, 0}, {3, 3}};
  const UnitDiskGraph udg = build_udg(pts, 1.0);
  const auto close = udg.neighbors_within(0, 0.5);
  EXPECT_EQ(close, (std::vector<NodeId>{1}));
  const auto all = udg.neighbors_within(0, 1.0);
  EXPECT_EQ(all, (std::vector<NodeId>{1, 2}));
}

TEST(UniformPoints, StayInSquare) {
  util::Rng rng(1);
  for (const Point& p : uniform_points(500, 3.0, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 3.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 3.0);
  }
}

TEST(UniformPoints, CorrectCount) {
  util::Rng rng(2);
  EXPECT_EQ(uniform_points(123, 1.0, rng).size(), 123u);
  EXPECT_TRUE(uniform_points(0, 1.0, rng).empty());
}

TEST(ClusteredPoints, StayInSquareAndCount) {
  util::Rng rng(3);
  const auto pts = clustered_points(200, 5, 10.0, 0.5, rng);
  EXPECT_EQ(pts.size(), 200u);
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
}

TEST(ClusteredPoints, ZeroStddevPutsPointsOnCenters) {
  util::Rng rng(4);
  const auto pts = clustered_points(10, 2, 10.0, 0.0, rng);
  // Points alternate between exactly two distinct locations.
  EXPECT_EQ(pts[0], pts[2]);
  EXPECT_EQ(pts[1], pts[3]);
}

TEST(PerturbedGrid, CountIsFloorSqrtSquared) {
  util::Rng rng(5);
  EXPECT_EQ(perturbed_grid_points(100, 10.0, 0.1, rng).size(), 100u);
  EXPECT_EQ(perturbed_grid_points(90, 10.0, 0.1, rng).size(), 81u);
  EXPECT_TRUE(perturbed_grid_points(0, 10.0, 0.1, rng).empty());
}

TEST(PerturbedGrid, ZeroJitterIsRegular) {
  util::Rng rng(6);
  const auto pts = perturbed_grid_points(9, 3.0, 0.0, rng);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_DOUBLE_EQ(pts[0].x, 0.5);
  EXPECT_DOUBLE_EQ(pts[0].y, 0.5);
  EXPECT_DOUBLE_EQ(pts[8].x, 2.5);
  EXPECT_DOUBLE_EQ(pts[8].y, 2.5);
}

TEST(UniformUdgWithDegree, HitsTargetDegree) {
  util::Rng rng(8);
  const UnitDiskGraph udg = uniform_udg_with_degree(2000, 12.0, rng);
  // Boundary effects push the average slightly below target.
  const double avg = graph::average_degree(udg.graph);
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 14.0);
}


TEST(QuasiUdg, NoChangeWithZeroParameters) {
  util::Rng rng(30);
  const UnitDiskGraph udg = uniform_udg_with_degree(100, 10.0, rng);
  const auto radio = quasi_udg(udg, 0.0, 0.0, rng);
  EXPECT_EQ(radio.edges(), udg.graph.edges());
}

TEST(QuasiUdg, FullSeverRemovesGeometricEdges) {
  util::Rng rng(31);
  const UnitDiskGraph udg = uniform_udg_with_degree(100, 10.0, rng);
  const auto radio = quasi_udg(udg, 1.0, 0.0, rng);
  EXPECT_EQ(radio.m(), 0u);
}

TEST(QuasiUdg, ReflectionsAddLongLinks) {
  util::Rng rng(32);
  const UnitDiskGraph udg = uniform_udg_with_degree(200, 8.0, rng);
  const auto radio = quasi_udg(udg, 0.0, 0.5, rng);
  EXPECT_GT(radio.m(), udg.graph.m());
  // At least one added link must be longer than the radio range.
  bool long_link = false;
  for (const graph::Edge& e : radio.edges()) {
    if (udg.distance(e.u, e.v) > udg.radius) {
      long_link = true;
      break;
    }
  }
  EXPECT_TRUE(long_link);
}

TEST(QuasiUdg, SeverRateApproximatelyRespected) {
  util::Rng rng(33);
  const UnitDiskGraph udg = uniform_udg_with_degree(500, 12.0, rng);
  const auto radio = quasi_udg(udg, 0.3, 0.0, rng);
  const double kept = static_cast<double>(radio.m()) /
                      static_cast<double>(udg.graph.m());
  EXPECT_NEAR(kept, 0.7, 0.05);
}


TEST(UdgIo, RoundTripPreservesDeployment) {
  const std::string path = ::testing::TempDir() + "/ftc_udg_test.udg";
  util::Rng rng(40);
  const UnitDiskGraph original = uniform_udg_with_degree(150, 10.0, rng);
  save_udg(path, original);
  const UnitDiskGraph loaded = load_udg(path);
  EXPECT_EQ(loaded.n(), original.n());
  EXPECT_DOUBLE_EQ(loaded.radius, original.radius);
  EXPECT_EQ(loaded.positions, original.positions);
  EXPECT_EQ(loaded.graph.edges(), original.graph.edges());
  std::remove(path.c_str());
}

TEST(UdgIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_udg("/nonexistent_zzz/x.udg"), std::runtime_error);
}

TEST(UdgIo, MalformedHeaderThrows) {
  const std::string path = ::testing::TempDir() + "/ftc_udg_bad.udg";
  {
    std::ofstream out(path);
    out << "not a header\n";
  }
  EXPECT_THROW((void)load_udg(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(UdgIo, TruncatedPointsThrow) {
  const std::string path = ::testing::TempDir() + "/ftc_udg_trunc.udg";
  {
    std::ofstream out(path);
    out << "3 1.0\n0 0\n1 1\n";  // promises 3, delivers 2
  }
  EXPECT_THROW((void)load_udg(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftc::geom
