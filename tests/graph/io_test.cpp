#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::graph {
namespace {

TEST(EdgeListIo, RoundTripStream) {
  util::Rng rng(1);
  const Graph g = gnp(40, 0.1, rng);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph h = read_edge_list(buffer);
  EXPECT_EQ(h.n(), g.n());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(EdgeListIo, CommentsSkipped) {
  std::istringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.m(), 2u);
}

TEST(EdgeListIo, EmptyGraphRoundTrip) {
  std::stringstream buffer;
  write_edge_list(buffer, Graph{});
  const Graph g = read_edge_list(buffer);
  EXPECT_EQ(g.n(), 0);
  EXPECT_EQ(g.m(), 0u);
}

TEST(EdgeListIo, MissingHeaderThrows) {
  std::istringstream in("");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, BadHeaderThrows) {
  std::istringstream in("abc\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, TruncatedEdgeListThrows) {
  std::istringstream in("4 3\n0 1\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, OutOfRangeEndpointThrows) {
  std::istringstream in("3 1\n0 7\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, SelfLoopThrows) {
  std::istringstream in("3 1\n1 1\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ftc_io_test.edges";
  util::Rng rng(2);
  const Graph g = gnp(25, 0.2, rng);
  save_edge_list(path, g);
  const Graph h = load_edge_list(path);
  EXPECT_EQ(h.edges(), g.edges());
  std::remove(path.c_str());
}

TEST(EdgeListIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_edge_list("/nonexistent_zzz/nope.edges"),
               std::runtime_error);
}

TEST(Dot, ContainsNodesAndEdges) {
  const Graph g =
      Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  std::ostringstream out;
  write_dot(out, g);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(Dot, HighlightsMarkedNodes) {
  const Graph g = Graph::from_edges(2, std::vector<Edge>{{0, 1}});
  std::ostringstream out;
  const std::vector<NodeId> marked{1};
  write_dot(out, g, marked);
  EXPECT_NE(out.str().find("1 [style=filled"), std::string::npos);
  EXPECT_EQ(out.str().find("0 [style=filled"), std::string::npos);
}

}  // namespace
}  // namespace ftc::graph
