#include "graph/properties.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::graph {
namespace {

TEST(Components, SingleComponent) {
  const Components c = connected_components(path(5));
  EXPECT_EQ(c.count, 1);
  for (NodeId label : c.component) EXPECT_EQ(label, 0);
}

TEST(Components, DisjointPieces) {
  // Two triangles: {0,1,2} and {3,4,5}.
  const Graph g = Graph::from_edges(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2);
  EXPECT_EQ(c.component[0], c.component[1]);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_EQ(c.component[3], c.component[4]);
  EXPECT_NE(c.component[0], c.component[3]);
}

TEST(Components, IsolatedNodesAreOwnComponents) {
  const Components c = connected_components(empty(4));
  EXPECT_EQ(c.count, 4);
}

TEST(Components, EmptyGraph) {
  EXPECT_EQ(connected_components(Graph{}).count, 0);
}

TEST(IsConnected, Various) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(empty(1)));
  EXPECT_FALSE(is_connected(empty(2)));
  EXPECT_TRUE(is_connected(cycle(5)));
  EXPECT_TRUE(is_connected(complete(4)));
}

TEST(BfsDistances, PathDistances) {
  const auto dist = bfs_distances(path(5), 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  const auto dist = bfs_distances(empty(3), 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], -1);
  EXPECT_EQ(dist[2], -1);
}

TEST(BfsDistances, CycleWrapsAround) {
  const auto dist = bfs_distances(cycle(6), 0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
}

TEST(Eccentricity, PathEnds) {
  EXPECT_EQ(eccentricity(path(5), 0), 4);
  EXPECT_EQ(eccentricity(path(5), 2), 2);
}

TEST(DegreeHistogram, Star) {
  const auto hist = degree_histogram(star(5));
  ASSERT_EQ(hist.size(), 5u);  // max degree 4
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(DegreeHistogram, SumsToN) {
  util::Rng rng(1);
  const Graph g = gnp(100, 0.05, rng);
  const auto hist = degree_histogram(g);
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(DegreeHistogram, EmptyGraph) {
  EXPECT_TRUE(degree_histogram(Graph{}).empty());
}

TEST(AverageDegree, Known) {
  EXPECT_DOUBLE_EQ(average_degree(cycle(10)), 2.0);
  EXPECT_DOUBLE_EQ(average_degree(complete(5)), 4.0);
  EXPECT_DOUBLE_EQ(average_degree(Graph{}), 0.0);
}

TEST(MinDegree, Known) {
  EXPECT_EQ(min_degree(path(4)), 1);
  EXPECT_EQ(min_degree(cycle(4)), 2);
  EXPECT_EQ(min_degree(star(5)), 1);
  EXPECT_EQ(min_degree(Graph{}), 0);
}

}  // namespace
}  // namespace ftc::graph
