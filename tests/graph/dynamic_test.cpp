// MutableGraph: the dynamic companion to the immutable CSR Graph. The
// contract under test is rebuild-vs-mutate equivalence — any mutation
// sequence, frozen via to_graph(), equals Graph::from_edges over the same
// edge list — plus the shared uint32 CSR bound (csr_arcs_fit).
#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dynamic.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::graph {
namespace {

void expect_same_adjacency(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  for (NodeId v = 0; v < a.n(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "adjacency of node " << v << " differs";
  }
}

TEST(MutableGraph, ThawFreezeRoundTrips) {
  util::Rng rng(7);
  const Graph g = gnp(40, 0.2, rng);
  MutableGraph mg(g);
  EXPECT_EQ(mg.n(), g.n());
  EXPECT_EQ(mg.m(), static_cast<std::size_t>(g.m()));
  expect_same_adjacency(mg.to_graph(), g);
}

TEST(MutableGraph, AddRemoveEdgeMatchesSortedInvariant) {
  MutableGraph mg;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(mg.add_node(), i);
  EXPECT_TRUE(mg.add_edge(3, 1));
  EXPECT_TRUE(mg.add_edge(1, 0));
  EXPECT_TRUE(mg.add_edge(1, 4));
  EXPECT_FALSE(mg.add_edge(1, 3));  // duplicate (either orientation)
  EXPECT_EQ(mg.m(), 3u);
  const std::vector<NodeId> expected{0, 3, 4};
  const auto nbrs = mg.neighbors(1);
  EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), expected.begin(),
                         expected.end()));
  EXPECT_TRUE(mg.has_edge(4, 1));
  EXPECT_FALSE(mg.has_edge(0, 4));
  EXPECT_FALSE(mg.has_edge(2, 2));

  EXPECT_TRUE(mg.remove_edge(0, 1));
  EXPECT_FALSE(mg.remove_edge(0, 1));  // already gone
  EXPECT_EQ(mg.m(), 2u);
  EXPECT_FALSE(mg.has_edge(0, 1));
}

TEST(MutableGraph, IsolateReturnsIncidentEdgesAscending) {
  MutableGraph mg;
  for (int i = 0; i < 6; ++i) mg.add_node();
  mg.add_edge(2, 5);
  mg.add_edge(2, 0);
  mg.add_edge(2, 4);
  mg.add_edge(1, 3);
  const std::vector<Edge> removed = mg.isolate(2);
  const std::vector<Edge> expected{{0, 2}, {2, 4}, {2, 5}};
  EXPECT_EQ(removed, expected);
  EXPECT_EQ(mg.degree(2), 0);
  EXPECT_EQ(mg.m(), 1u);        // {1,3} untouched
  EXPECT_TRUE(mg.isolate(2).empty());  // idempotent
}

// Differential: a random mutation sequence applied to MutableGraph must
// agree with a set-of-edges reference at every step, and the final freeze
// must equal Graph::from_edges over the surviving edges.
TEST(MutableGraph, RandomMutationsMatchReference) {
  util::Rng rng(2024);
  MutableGraph mg;
  const NodeId n = 30;
  for (NodeId i = 0; i < n; ++i) mg.add_node();
  std::vector<std::vector<std::uint8_t>> ref(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0));
  std::size_t m = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    const auto v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u == v) continue;
    const auto ui = static_cast<std::size_t>(u);
    const auto vi = static_cast<std::size_t>(v);
    if (rng.bernoulli(0.6)) {
      const bool inserted = mg.add_edge(u, v);
      EXPECT_EQ(inserted, ref[ui][vi] == 0);
      if (inserted) ++m;
      ref[ui][vi] = ref[vi][ui] = 1;
    } else {
      const bool removed = mg.remove_edge(u, v);
      EXPECT_EQ(removed, ref[ui][vi] != 0);
      if (removed) --m;
      ref[ui][vi] = ref[vi][ui] = 0;
    }
    ASSERT_EQ(mg.m(), m);
  }
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (ref[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]) {
        edges.push_back({u, v});
      }
    }
  }
  EXPECT_EQ(mg.edges(), edges);
  expect_same_adjacency(mg.to_graph(), Graph::from_edges(n, edges));
}

// The uint32 CSR bound at its exact boundary: 2m == uint32max fits, one
// more arc does not. Shared predicate, so the static (from_edges) and
// dynamic (add_edge) paths reject exactly the same sizes.
TEST(CsrArcsFit, ExactBoundary) {
  const auto max32 =
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max());
  EXPECT_TRUE(csr_arcs_fit(0));
  EXPECT_TRUE(csr_arcs_fit(2));
  EXPECT_TRUE(csr_arcs_fit(max32));
  EXPECT_FALSE(csr_arcs_fit(max32 + 1));
  EXPECT_FALSE(csr_arcs_fit(2 * max32));
}

}  // namespace
}  // namespace ftc::graph
