#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ftc::graph {
namespace {

Graph triangle() {
  return Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.n(), 0);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Graph, IsolatedNodes) {
  const Graph g = Graph::from_edges(5, std::span<const Edge>{});
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.m(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.degree(v), 0);
    EXPECT_TRUE(g.neighbors(v).empty());
  }
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g = Graph::from_edges(
      5, std::vector<Edge>{{4, 0}, {2, 0}, {0, 3}, {1, 0}});
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(Graph, DuplicateEdgesMerged) {
  const Graph g = Graph::from_edges(
      3, std::vector<Edge>{{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, HasEdgeSymmetric) {
  const Graph g = triangle();
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 0; v < 3; ++v) {
      EXPECT_EQ(g.has_edge(u, v), u != v);
      EXPECT_EQ(g.has_edge(u, v), g.has_edge(v, u));
    }
  }
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  const Graph g = triangle();
  EXPECT_FALSE(g.has_edge(-1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, EdgesRoundTrip) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto out = g.edges();
  EXPECT_EQ(out.size(), 4u);
  for (const Edge& e : out) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(Graph, PairOverloadEquivalent) {
  const Graph a = Graph::from_edges(
      3, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}});
  const Graph b =
      Graph::from_edges(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Graph, WithoutNodesDropsIncidentEdges) {
  const Graph g = triangle();
  const std::vector<NodeId> removed{0};
  const Graph h = g.without_nodes(removed);
  EXPECT_EQ(h.n(), 3);  // ids stay stable
  EXPECT_EQ(h.m(), 1u);  // only edge {1,2} survives
  EXPECT_EQ(h.degree(0), 0);
  EXPECT_TRUE(h.has_edge(1, 2));
}

TEST(Graph, WithoutNodesEmptyRemovalIsIdentity) {
  const Graph g = triangle();
  const Graph h = g.without_nodes({});
  EXPECT_EQ(h.edges(), g.edges());
}

TEST(Graph, MaxDegreeStar) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < 10; ++v) edges.push_back({0, v});
  const Graph g = Graph::from_edges(10, edges);
  EXPECT_EQ(g.max_degree(), 9);
  EXPECT_EQ(g.degree(0), 9);
  EXPECT_EQ(g.degree(5), 1);
}

}  // namespace
}  // namespace ftc::graph
