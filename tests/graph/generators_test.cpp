#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/properties.h"

namespace ftc::graph {
namespace {

TEST(Gnp, ZeroProbabilityGivesNoEdges) {
  util::Rng rng(1);
  const Graph g = gnp(50, 0.0, rng);
  EXPECT_EQ(g.n(), 50);
  EXPECT_EQ(g.m(), 0u);
}

TEST(Gnp, ProbabilityOneGivesClique) {
  util::Rng rng(2);
  const Graph g = gnp(20, 1.0, rng);
  EXPECT_EQ(g.m(), 20u * 19u / 2u);
}

TEST(Gnp, EdgeCountNearExpectation) {
  util::Rng rng(3);
  const int n = 400;
  const double p = 0.05;
  const Graph g = gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.m()), expected, 4.0 * std::sqrt(expected));
}

TEST(Gnp, DeterministicForSeed) {
  util::Rng a(42), b(42);
  EXPECT_EQ(gnp(100, 0.1, a).edges(), gnp(100, 0.1, b).edges());
}

TEST(Gnp, TinyGraphs) {
  util::Rng rng(4);
  EXPECT_EQ(gnp(0, 0.5, rng).n(), 0);
  EXPECT_EQ(gnp(1, 0.5, rng).n(), 1);
  EXPECT_EQ(gnp(1, 0.5, rng).m(), 0u);
}

TEST(Gnm, ExactEdgeCount) {
  util::Rng rng(5);
  const Graph g = gnm(30, 100, rng);
  EXPECT_EQ(g.n(), 30);
  EXPECT_EQ(g.m(), 100u);
}

TEST(Gnm, MaxEdges) {
  util::Rng rng(6);
  const Graph g = gnm(10, 45, rng);
  EXPECT_EQ(g.m(), 45u);
}

TEST(Gnm, ZeroEdges) {
  util::Rng rng(7);
  EXPECT_EQ(gnm(10, 0, rng).m(), 0u);
}

TEST(BarabasiAlbert, NodeAndEdgeCounts) {
  util::Rng rng(8);
  const Graph g = barabasi_albert(100, 3, rng);
  EXPECT_EQ(g.n(), 100);
  // Seed clique of 4 nodes (6 edges) + 96 nodes × 3 attachments.
  EXPECT_EQ(g.m(), 6u + 96u * 3u);
}

TEST(BarabasiAlbert, IsConnected) {
  util::Rng rng(9);
  EXPECT_TRUE(is_connected(barabasi_albert(200, 2, rng)));
}

TEST(BarabasiAlbert, ProducesHighDegreeHub) {
  util::Rng rng(10);
  const Graph g = barabasi_albert(500, 2, rng);
  // Preferential attachment: Δ should far exceed the average degree (~4).
  EXPECT_GT(g.max_degree(), 15);
}

TEST(RandomTree, EdgeCountAndConnectivity) {
  util::Rng rng(11);
  for (NodeId n : {2, 3, 10, 50}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.n(), n);
    EXPECT_EQ(g.m(), static_cast<std::size_t>(n - 1));
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(RandomTree, TinyCases) {
  util::Rng rng(12);
  EXPECT_EQ(random_tree(0, rng).n(), 0);
  EXPECT_EQ(random_tree(1, rng).m(), 0u);
}

TEST(Grid, Structure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.m(), 3u * 3u + 2u * 4u);  // horizontal + vertical edges
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.degree(0), 2);  // corner
}

TEST(Path, Structure) {
  const Graph g = path(5);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Cycle, Structure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.m(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Star, Structure) {
  const Graph g = star(7);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(g.degree(0), 6);
  EXPECT_EQ(g.max_degree(), 6);
}

TEST(Complete, Structure) {
  const Graph g = complete(6);
  EXPECT_EQ(g.m(), 15u);
  EXPECT_EQ(g.max_degree(), 5);
}

TEST(Empty, Structure) {
  const Graph g = empty(4);
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.m(), 0u);
}

TEST(RandomRegular, DegreesAreExact) {
  util::Rng rng(13);
  const Graph g = random_regular(20, 4, rng);
  EXPECT_EQ(g.n(), 20);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(RandomRegular, OddProductRejectedByContract) {
  // n*d even is required; test an allowed odd-d case.
  util::Rng rng(14);
  const Graph g = random_regular(10, 3, rng);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(Caveman, Structure) {
  const Graph g = caveman(3, 4);
  EXPECT_EQ(g.n(), 12);
  // 3 cliques of 6 edges each + 2 bridges.
  EXPECT_EQ(g.m(), 3u * 6u + 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Caveman, SingleClique) {
  const Graph g = caveman(1, 5);
  EXPECT_EQ(g.m(), 10u);
}


TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  util::Rng rng(20);
  const Graph g = watts_strogatz(12, 4, 0.0, rng);
  EXPECT_EQ(g.m(), 12u * 2u);  // n*k/2 edges
  for (NodeId v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCountApproximately) {
  util::Rng rng(21);
  const Graph g = watts_strogatz(200, 6, 0.3, rng);
  // Rewiring replaces edges one-for-one except for rare exhausted retries.
  EXPECT_GE(g.m(), 200u * 3u - 10u);
  EXPECT_LE(g.m(), 200u * 3u);
}

TEST(WattsStrogatz, FullRewireBreaksLattice) {
  util::Rng rng(22);
  const Graph g = watts_strogatz(100, 4, 1.0, rng);
  // With beta=1, the chance every node keeps both +1/+2 lattice links is nil.
  int lattice_like = 0;
  for (NodeId v = 0; v < 100; ++v) {
    if (g.has_edge(v, static_cast<NodeId>((v + 1) % 100)) &&
        g.has_edge(v, static_cast<NodeId>((v + 2) % 100))) {
      ++lattice_like;
    }
  }
  EXPECT_LT(lattice_like, 60);
}

TEST(WattsStrogatz, SimpleGraphInvariants) {
  util::Rng rng(23);
  const Graph g = watts_strogatz(150, 8, 0.5, rng);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_FALSE(g.has_edge(v, v));
  }
  EXPECT_TRUE(is_connected(g)) << "WS with k=8 should stay connected";
}

}  // namespace
}  // namespace ftc::graph
