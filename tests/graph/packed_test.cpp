#include "graph/packed.h"

#include <gtest/gtest.h>

#include <vector>

#include "geom/udg.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ftc::graph {
namespace {

/// Full adjacency round-trip: both the callback and the scratch-decode
/// paths must reproduce Graph::neighbors exactly, node by node.
void expect_roundtrip(const Graph& g) {
  const PackedAdjacency packed(g);
  ASSERT_EQ(packed.n(), g.n());
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(packed.degree(v), g.degree(v)) << "node " << v;
    packed.decode(v, scratch);
    ASSERT_EQ(scratch, std::vector<NodeId>(nbrs.begin(), nbrs.end()))
        << "node " << v;
    std::vector<NodeId> via_callback;
    packed.for_each_neighbor(v, [&](NodeId w) { via_callback.push_back(w); });
    ASSERT_EQ(via_callback, scratch) << "node " << v;
  }
}

TEST(PackedAdjacency, RoundTripsGeneratorFamilies) {
  util::Rng rng(17);
  expect_roundtrip(gnp(120, 0.08, rng));
  expect_roundtrip(gnm(200, 900, rng));
  expect_roundtrip(random_tree(150, rng));
  expect_roundtrip(grid(12, 17));
  expect_roundtrip(complete(25));
  expect_roundtrip(star(40));
  expect_roundtrip(cycle(33));
}

TEST(PackedAdjacency, RoundTripsUnitDiskGraph) {
  util::Rng rng(42);
  const auto udg = geom::uniform_udg_with_degree(2000, 12.0, rng);
  expect_roundtrip(udg.graph);
}

TEST(PackedAdjacency, HandlesEmptyAndIsolatedNodes) {
  expect_roundtrip(Graph{});
  expect_roundtrip(empty(50));

  // Mixed: a few edges, many isolated nodes, including node 0 and the last.
  const Graph g = Graph::from_edges(
      10, std::vector<std::pair<NodeId, NodeId>>{{2, 5}, {5, 7}, {2, 7}});
  expect_roundtrip(g);
  const PackedAdjacency packed(g);
  EXPECT_EQ(packed.degree(0), 0);
  EXPECT_EQ(packed.degree(9), 0);
  EXPECT_EQ(packed.degree(5), 2);
}

TEST(PackedAdjacency, CompressesSpatialTopologyBelowRawCsr) {
  // The headline use case: a sorted spatial topology should pack well under
  // the 4 bytes/arc of the raw CSR adjacency array. Offsets and degrees are
  // included in memory_bytes, so this also guards against bookkeeping bloat.
  util::Rng rng(7);
  const auto udg = geom::uniform_udg_with_degree(5000, 12.0, rng);
  const Graph& g = udg.graph;
  const PackedAdjacency packed(g);
  const std::size_t arcs = g.m() * 2;
  EXPECT_LT(packed.byte_size(), arcs * 3) << "gap encoding is not engaging";
  EXPECT_LT(packed.memory_bytes(), g.memory_bytes());
}

TEST(PackedAdjacency, MemoryBytesAccountsForAllArrays) {
  util::Rng rng(3);
  const Graph g = gnp(300, 0.05, rng);
  const PackedAdjacency packed(g);
  // bytes + (n+1) uint32 offsets + n uint32 degrees, at minimum.
  EXPECT_GE(packed.memory_bytes(),
            packed.byte_size() +
                (static_cast<std::size_t>(g.n()) * 2 + 1) * sizeof(std::uint32_t));
}

TEST(GraphMemory, MemoryBytesTracksCsrFootprint) {
  const Graph g0;
  EXPECT_EQ(g0.memory_bytes(), 0u);
  util::Rng rng(11);
  const Graph g = gnp(400, 0.04, rng);
  // n+1 uint32 offsets plus 2m 32-bit ids, modulo capacity slack.
  EXPECT_GE(g.memory_bytes(), (static_cast<std::size_t>(g.n()) + 1) *
                                      sizeof(std::uint32_t) +
                                  g.m() * 2 * sizeof(NodeId));
}

TEST(PackedAdjacency, RoundTripsAfterIncrementalEdgeUpdates) {
  // The dynamic path re-freezes mutated topologies: thaw a graph, churn it
  // through MutableGraph, freeze, and the packing of the frozen graph must
  // be indistinguishable from packing a from-scratch rebuild of the same
  // edge list (rebuild-vs-mutate equivalence extended to the compressed
  // representation).
  util::Rng rng(29);
  const Graph g0 = gnp(150, 0.06, rng);
  MutableGraph mg(g0);
  for (int step = 0; step < 600; ++step) {
    const auto u =
        static_cast<NodeId>(rng.index(static_cast<std::size_t>(mg.n())));
    const auto v =
        static_cast<NodeId>(rng.index(static_cast<std::size_t>(mg.n())));
    if (u == v) continue;
    if (rng.bernoulli(0.5)) {
      mg.add_edge(u, v);
    } else {
      mg.remove_edge(u, v);
    }
    if (step % 97 == 0) mg.add_node();
  }
  const Graph mutated = mg.to_graph();
  expect_roundtrip(mutated);
  const Graph rebuilt = Graph::from_edges(mg.n(), mg.edges());
  const PackedAdjacency a(mutated);
  const PackedAdjacency b(rebuilt);
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.byte_size(), b.byte_size());
  std::vector<NodeId> da, db;
  for (NodeId v = 0; v < a.n(); ++v) {
    a.decode(v, da);
    b.decode(v, db);
    ASSERT_EQ(da, db) << "node " << v;
  }
}

TEST(PackedAdjacency, LargeGapsNeedMultiByteVarints) {
  // Star graph centered at the last node: the leaf lists hold one large
  // absolute id, the center list has unit gaps — exercises both varint
  // extremes through the same decode path.
  const NodeId n = 40000;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, n - 1});
  expect_roundtrip(Graph::from_edges(n, edges));
}

}  // namespace
}  // namespace ftc::graph
