// The mutation-trace fuzzing dimension (DESIGN.md §13): seed-pure trace
// generation with an exact prefix property, backward-compatible case lines,
// a clean forced-dynamic campaign over the full DynamicOracle, mutation
// testing for the maintainer (a broken promotion wave must be caught by a
// dynamic.* invariant), and trace-aware shrinking (the minimizer reduces
// the trace, not just the topology).
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "testing/dynamic.h"
#include "testing/generators.h"
#include "testing/invariants.h"
#include "testing/mutants.h"
#include "testing/runner.h"

namespace ftc::testing {
namespace {

TEST(DynamicFuzzGenerator, OldCaseLinesWithoutDynamicKeysStillParse) {
  // Case lines written before the dynamic dimension existed carry none of
  // the four mutation keys; they must parse to "dynamic off" defaults, so
  // every archived repro line keeps reproducing byte-identically.
  for (std::int64_t i = 0; i < 50; ++i) {
    const FuzzCase c = generate_case(case_seed_of(21, i));
    std::string line = to_string(c);
    const std::size_t cut = line.find(" run_dynamic=");
    ASSERT_NE(cut, std::string::npos) << line;
    line.resize(cut);  // the dynamic keys are the trailing key group
    const FuzzCase parsed = parse_fuzz_case(line);
    FuzzCase expected = c;
    expected.run_dynamic = false;
    expected.mutations = 0;
    expected.mutation_batch = 1;
    expected.mutation_seed = 1;
    EXPECT_EQ(parsed, expected) << line;
  }
}

TEST(DynamicFuzzGenerator, DynamicFieldsRoundTripAndForceFlagSticks) {
  FuzzConfig config;
  config.force_dynamic = true;
  for (std::int64_t i = 0; i < 50; ++i) {
    const FuzzCase c = generate_case(case_seed_of(31, i), config);
    ASSERT_TRUE(c.run_dynamic);
    ASSERT_GE(c.mutations, 1);
    ASSERT_LE(c.mutations, config.max_mutations);
    ASSERT_GE(c.mutation_batch, 1);
    EXPECT_EQ(parse_fuzz_case(to_string(c)), c) << to_string(c);
  }
}

// Traces are drawn per-mutation in order from a dedicated stream, so a
// case whose `mutations` was truncated replays an exact prefix of the
// longer trace. This is what makes the shrinker's trace minimization sound
// (a shrunk repro is a sub-history, never a different history).
TEST(DynamicFuzzGenerator, TruncatedTraceIsAnExactPrefix) {
  FuzzConfig config;
  config.force_dynamic = true;
  for (std::int64_t i = 0; i < 25; ++i) {
    FuzzCase c = generate_case(case_seed_of(77, i), config);
    c.mutations = std::max(2, c.mutations);
    const Instance inst = materialize(c);
    const sim::MutationTrace full = trace_from_case(c, inst);
    FuzzCase shorter = c;
    shorter.mutations = c.mutations / 2;
    const sim::MutationTrace prefix = trace_from_case(shorter, inst);
    ASSERT_EQ(full.size(), static_cast<std::size_t>(c.mutations));
    ASSERT_EQ(prefix.size(), static_cast<std::size_t>(shorter.mutations));
    for (std::size_t j = 0; j < prefix.size(); ++j) {
      ASSERT_EQ(prefix[j], full[j]) << "case " << i << " entry " << j;
    }
  }
}

// A forced-dynamic campaign over the full oracle battery: every topology
// family, every trace, every invariant — clean. This is `ftc-fuzz run
// --dynamic` in miniature; failures print the one-line repro.
TEST(DynamicFuzzCampaign, CleanRunFindsNoFailures) {
  FuzzOptions options;
  options.seed = 5;
  options.cases = 150;
  options.max_failures = 3;
  options.config.force_dynamic = true;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.cases_run, 150);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << "case_seed=" << failure.case_seed << " "
                  << failure.violations.front().invariant << ": "
                  << failure.violations.front().detail
                  << "\n  repro: ftc-fuzz replay " << failure.case_seed
                  << " --dynamic";
  }
}

// Mutation testing for the dynamic path: a maintainer whose promotion wave
// is disabled must be caught quickly, and by a dynamic.* oracle — not by
// an incidental invariant.
TEST(DynamicFuzzMutation, MaintainerNoPromotionCaughtByDynamicOracle) {
  FuzzOptions options;
  options.seed = 1;
  options.cases = 300;
  options.mutation = Mutation::kMaintainerNoPromotion;
  options.max_failures = 1;
  options.config.force_dynamic = true;
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.failures.empty())
      << "maintainer-no-promotion survived 300 dynamic cases";
  const CaseFailure& failure = report.failures.front();
  const bool caught_by_oracle = std::any_of(
      failure.violations.begin(), failure.violations.end(),
      [](const Violation& v) { return v.invariant.starts_with("dynamic."); });
  EXPECT_TRUE(caught_by_oracle)
      << "caught only incidental invariants; first: "
      << failure.violations.front().invariant;
}

// The shrinker must minimize the TRACE as well as the topology: the shrunk
// repro keeps failing the same dynamic invariant with no more mutations
// (and usually far fewer) than the original.
TEST(DynamicFuzzShrink, MinimizesTraceNotJustTopology) {
  FuzzOptions options;
  options.seed = 1;
  options.cases = 300;
  options.mutation = Mutation::kMaintainerNoPromotion;
  options.max_failures = 1;
  options.config.force_dynamic = true;
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.failures.empty());
  const FuzzCase original = report.failures.front().fuzz_case;
  const std::string invariant =
      report.failures.front().violations.front().invariant;
  ASSERT_TRUE(original.run_dynamic);

  const FuzzCase shrunk =
      shrink_case(original, Mutation::kMaintainerNoPromotion);
  EXPECT_TRUE(shrunk.run_dynamic);  // cannot shed the failing dimension
  EXPECT_LE(shrunk.mutations, original.mutations);
  EXPECT_LE(shrunk.n, original.n);
  const Violations after =
      run_case(shrunk, Mutation::kMaintainerNoPromotion);
  ASSERT_FALSE(after.empty()) << "shrunk case no longer fails";
  EXPECT_EQ(after.front().invariant, invariant);
  EXPECT_EQ(parse_fuzz_case(to_string(shrunk)), shrunk);
}

}  // namespace
}  // namespace ftc::testing
