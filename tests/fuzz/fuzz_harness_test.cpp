// Tests for the adversarial fuzzing harness itself (DESIGN.md §8): the
// case generator's determinism and serialization, a clean campaign over the
// real stack, mutation-testing (the harness must catch known injected bugs
// within a bounded number of cases), and the shrinker's contract.
#include <algorithm>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "domination/domination.h"
#include "testing/generators.h"
#include "testing/invariants.h"
#include "testing/mutants.h"
#include "testing/runner.h"

namespace ftc::testing {
namespace {

TEST(FuzzGenerator, CaseIsPureFunctionOfSeed) {
  const FuzzConfig config;
  for (std::int64_t i = 0; i < 64; ++i) {
    const std::uint64_t seed = case_seed_of(42, i);
    EXPECT_EQ(generate_case(seed, config), generate_case(seed, config));
  }
  // Distinct indices yield distinct seeds (splitmix dispersion).
  EXPECT_NE(case_seed_of(42, 0), case_seed_of(42, 1));
  EXPECT_NE(case_seed_of(42, 0), case_seed_of(43, 0));
}

TEST(FuzzGenerator, MaterializeRespectsBounds) {
  FuzzConfig config;
  config.min_n = 3;
  config.max_n = 40;
  for (std::int64_t i = 0; i < 200; ++i) {
    const FuzzCase c = generate_case(case_seed_of(7, i), config);
    ASSERT_GE(c.n, config.min_n);
    ASSERT_LE(c.n, config.max_n);
    ASSERT_GE(c.k, 1);
    ASSERT_LE(c.k, config.max_k);
    ASSERT_GE(c.t, 1);
    ASSERT_LE(c.t, config.max_t);
    ASSERT_GE(c.loss, 0.0);
    ASSERT_LE(c.loss, config.max_loss);
    const Instance inst = materialize(c);
    const auto& g = inst.graph();
    ASSERT_GT(g.n(), 0);
    ASSERT_EQ(inst.demands.size(), static_cast<std::size_t>(g.n()));
    // Demands were clamped to feasibility: k_i <= |N[i]|.
    for (graph::NodeId v = 0; v < g.n(); ++v) {
      ASSERT_GE(inst.demands[static_cast<std::size_t>(v)], 1);
      ASSERT_LE(inst.demands[static_cast<std::size_t>(v)],
                static_cast<std::int32_t>(g.degree(v)) + 1);
    }
  }
}

TEST(FuzzGenerator, MaterializeIsDeterministic) {
  const FuzzCase c = generate_case(case_seed_of(11, 3));
  const Instance a = materialize(c);
  const Instance b = materialize(c);
  ASSERT_EQ(a.graph().n(), b.graph().n());
  ASSERT_EQ(a.graph().m(), b.graph().m());
  EXPECT_EQ(a.demands, b.demands);
  for (graph::NodeId v = 0; v < a.graph().n(); ++v) {
    const auto na = a.graph().neighbors(v);
    const auto nb = b.graph().neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(FuzzGenerator, SerializationRoundTrips) {
  for (std::int64_t i = 0; i < 100; ++i) {
    const FuzzCase c = generate_case(case_seed_of(3, i));
    const FuzzCase parsed = parse_fuzz_case(to_string(c));
    EXPECT_EQ(parsed, c) << to_string(c);
  }
}

TEST(FuzzGenerator, ParseRejectsMalformedInput) {
  const std::string good = to_string(generate_case(case_seed_of(1, 0)));
  EXPECT_THROW((void)parse_fuzz_case(""), std::invalid_argument);
  EXPECT_THROW((void)parse_fuzz_case("case_seed=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fuzz_case(good + " bogus_key=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fuzz_case(good + " n"), std::invalid_argument);
  std::string bad_value = good;
  bad_value.replace(bad_value.find("n="), 3, "n=x ");
  EXPECT_THROW((void)parse_fuzz_case(bad_value), std::invalid_argument);
}

// A short clean campaign over the real stack: every invariant must hold.
// This is the same battery `ftc-fuzz run` executes, so a failure here comes
// with a one-line repro in the failure message.
TEST(FuzzCampaign, CleanRunFindsNoFailures) {
  FuzzOptions options;
  options.seed = 1;
  options.cases = 150;
  options.max_failures = 3;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.cases_run, 150);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << "case_seed=" << failure.case_seed << " "
                  << failure.violations.front().invariant << ": "
                  << failure.violations.front().detail
                  << "\n  repro: ftc-fuzz replay " << failure.case_seed;
  }
}

TEST(FuzzCampaign, ReplayIsBitForBit) {
  for (std::int64_t i = 0; i < 25; ++i) {
    const FuzzCase c = generate_case(case_seed_of(99, i));
    const Violations a = run_case(c);
    const Violations b = run_case(c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].invariant, b[j].invariant);
      EXPECT_EQ(a[j].detail, b[j].detail);
    }
  }
}

// The kNone "mutant" must reproduce Algorithm 2 exactly — this is what makes
// the injected bugs the *only* difference between mutant and real pipeline.
TEST(FuzzMutation, IdentityMutantMatchesRealRounding) {
  for (std::int64_t i = 0; i < 40; ++i) {
    const FuzzCase c = generate_case(case_seed_of(5, i));
    const Instance inst = materialize(c);
    const auto& g = inst.graph();
    algo::LpOptions lp_options;
    lp_options.t = c.t;
    const auto lp = algo::solve_fractional_kmds(g, inst.demands, lp_options);
    const auto real =
        algo::round_fractional(g, lp.primal, inst.demands, c.algo_seed);
    const auto mutant = round_fractional_mutant(g, lp.primal, inst.demands,
                                                c.algo_seed, Mutation::kNone);
    EXPECT_EQ(mutant.set, real.set);
    EXPECT_EQ(mutant.chosen_by_coin, real.chosen_by_coin);
    EXPECT_EQ(mutant.chosen_by_request, real.chosen_by_request);
  }
}

struct MutationCatchParam {
  Mutation mutation;
  std::int64_t budget;  ///< cases within which the harness must fire
};

class FuzzMutationCatch : public ::testing::TestWithParam<MutationCatchParam> {
};

// Mutation-testing sanity: a harness that cannot catch a deliberately broken
// rounding variant is broken itself. Each known mutant must be flagged
// within a bounded number of cases, and the leading violation must be a
// coverage / differential / oracle catch (not an incidental one).
TEST_P(FuzzMutationCatch, CaughtWithinBudget) {
  const MutationCatchParam param = GetParam();
  FuzzOptions options;
  options.seed = 1;
  options.cases = param.budget;
  options.mutation = param.mutation;
  options.max_failures = 1;
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.failures.empty())
      << mutation_name(param.mutation) << " survived " << param.budget
      << " cases";
  const CaseFailure& failure = report.failures.front();
  const bool meaningful = std::any_of(
      failure.violations.begin(), failure.violations.end(),
      [](const Violation& v) {
        return v.invariant.starts_with("rounding.") ||
               v.invariant.starts_with("oracle.") ||
               v.invariant.starts_with("engine.");
      });
  EXPECT_TRUE(meaningful) << "caught only incidental invariants; first: "
                          << failure.violations.front().invariant;
}

INSTANTIATE_TEST_SUITE_P(
    KnownMutants, FuzzMutationCatch,
    ::testing::Values(
        MutationCatchParam{Mutation::kRoundingUnderRequest, 500},
        MutationCatchParam{Mutation::kRoundingDropLastCoin, 500}),
    [](const ::testing::TestParamInfo<MutationCatchParam>& info) {
      std::string name = mutation_name(info.param.mutation);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(FuzzShrink, ProducesSmallerCaseFailingSameInvariant) {
  // Find a failing case under the under-request mutant, then shrink it.
  FuzzOptions options;
  options.seed = 1;
  options.cases = 500;
  options.mutation = Mutation::kRoundingUnderRequest;
  options.max_failures = 1;
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.failures.empty());
  const FuzzCase original = report.failures.front().fuzz_case;
  const std::string invariant =
      report.failures.front().violations.front().invariant;

  const FuzzCase shrunk =
      shrink_case(original, Mutation::kRoundingUnderRequest);
  EXPECT_LE(shrunk.n, original.n);
  const Violations after = run_case(shrunk, Mutation::kRoundingUnderRequest);
  ASSERT_FALSE(after.empty()) << "shrunk case no longer fails";
  EXPECT_EQ(after.front().invariant, invariant);
  // The shrunk case serializes and round-trips like any other case.
  EXPECT_EQ(parse_fuzz_case(to_string(shrunk)), shrunk);
}

TEST(FuzzShrink, PassingCaseIsReturnedUnchanged) {
  const FuzzCase c = generate_case(case_seed_of(1, 0));
  ASSERT_TRUE(run_case(c).empty());
  EXPECT_EQ(shrink_case(c), c);
}

TEST(FuzzMutation, ParseNamesRoundTrip) {
  for (const Mutation m : {Mutation::kNone, Mutation::kRoundingUnderRequest,
                           Mutation::kRoundingDropLastCoin}) {
    EXPECT_EQ(parse_mutation(mutation_name(m)), m);
  }
  EXPECT_THROW((void)parse_mutation("no-such-mutation"),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftc::testing
