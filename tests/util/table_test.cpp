#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ftc::util {
namespace {

TEST(Table, HeaderOnlyRenders) {
  Table t({"a", "b"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("b |"), std::string::npos);
}

TEST(Table, RowCellsAppear) {
  Table t({"name", "value"});
  t.add_row({"alpha", "42"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW({ (void)t.to_string(); });
}

TEST(Table, RuleNotCountedAsRow) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, TitleAppearsFirst) {
  Table t({"a"});
  const std::string out = t.to_string("My Title");
  EXPECT_EQ(out.rfind("My Title", 0), 0u);
}

TEST(Table, ColumnsAlignByWidth) {
  Table t({"n", "x"});
  t.add_row({"1", "short"});
  t.add_row({"100000", "y"});
  std::istringstream lines(t.to_string());
  std::string line;
  std::size_t width = 0;
  bool first = true;
  while (std::getline(lines, line)) {
    if (first) {
      width = line.size();
      first = false;
    } else {
      EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
    }
  }
}

TEST(Table, LeftAlignDefault) {
  Table t({"label", "num"});
  t.add_row({"ab", "1"});
  const std::string out = t.to_string();
  // Label column is left aligned: "ab" followed by padding spaces.
  EXPECT_NE(out.find("| ab "), std::string::npos);
}

TEST(Table, SetAlignOverrides) {
  Table t({"x", "y"});
  t.set_align(0, Align::kRight);
  t.add_row({"z", "1"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("z |"), std::string::npos);
}

TEST(Fmt, DoublesUsePrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(42), "42");
  EXPECT_EQ(fmt(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(fmt(std::size_t{9}), "9");
}

}  // namespace
}  // namespace ftc::util
