#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ftc::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&](int i) { hits[static_cast<std::size_t>(i)] += 1; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.run(5, [&](int i) { order.push_back(i); });  // no workers: inline
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.run(10, [&](int i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50LL * 45);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.run(0, [&](int) { FAIL() << "no task should run"; });
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(1000, [&](int i) { hits[static_cast<std::size_t>(i)] += 1; });
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 1000);
}

TEST(ThreadPool, DisjointShardWritesNeedNoSynchronization) {
  // The simulator's usage pattern: tasks write to task-indexed slots and
  // the caller merges after run() returns (the barrier orders the writes).
  ThreadPool pool(4);
  std::vector<long long> slot(8, 0);
  pool.run(8, [&](int i) {
    for (int k = 0; k < 1000; ++k) slot[static_cast<std::size_t>(i)] += k;
  });
  const long long expected = 999LL * 1000 / 2;
  for (long long s : slot) {
    EXPECT_EQ(s, expected);
  }
}

TEST(ThreadPool, BackToBackJobsNeverLeakTasksAcrossGenerations) {
  // Regression test for a generation race: after a job's last task
  // completed, a worker re-entering the claim loop could observe the
  // counters already reset by the next run() call and claim a task of the
  // new job while still holding the old job's (by then destroyed)
  // function. Tiny jobs issued back-to-back with distinct per-job closures
  // maximize that window; a stale claim either corrupts `hits` (task run
  // by the wrong job's closure) or releases the barrier early (task never
  // run by the right one).
  ThreadPool pool(4);
  constexpr int kJobs = 2000;
  constexpr int kTasks = 3;
  for (int job = 0; job < kJobs; ++job) {
    std::vector<std::atomic<int>> hits(kTasks);
    pool.run(kTasks, [&hits, job](int i) {
      hits[static_cast<std::size_t>(i)] += job + 1;
    });
    for (const auto& h : hits) {
      ASSERT_EQ(h.load(), job + 1);
    }
  }
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, ChunkedGrainRunsEveryTaskExactlyOnce) {
  // Grain > 1 makes workers claim [begin, begin+grain) blocks; the chunking
  // must still cover every index exactly once, including the ragged tail
  // when grain does not divide the task count.
  ThreadPool pool(4);
  for (const int grain : {2, 7, 64, 1000}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.run(1000, [&](int i) { hits[static_cast<std::size_t>(i)] += 1; },
             grain);
    for (const auto& h : hits) {
      ASSERT_EQ(h.load(), 1) << "grain " << grain;
    }
  }
}

TEST(ThreadPool, GrainAtLeastTaskCountRunsInlineInOrder) {
  // tasks <= grain short-circuits to the caller's thread: sequential,
  // ascending, no handoff — the engine's small-n fallback relies on it.
  ThreadPool pool(4);
  std::vector<int> order;
  pool.run(6, [&](int i) { order.push_back(i); }, 6);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPool, PerfCountersStayZeroWhileDisabled) {
  // Off by default: the plain dispatch path must stay clock-free, so no
  // counter may move without set_perf_enabled(true).
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  for (int job = 0; job < 20; ++job) {
    pool.run(32, [&](int i) { sum += i; });
  }
  const auto pc = pool.drain_perf();
  EXPECT_EQ(pc.barrier_wait_ns, 0);
  EXPECT_EQ(pc.claim_stall_ns, 0);
}

TEST(ThreadPool, PerfCountersAccumulateAndDrainZeroes) {
  ThreadPool pool(4);
  pool.set_perf_enabled(true);
  std::atomic<long long> sum{0};
  // Tasks long enough that workers are still busy when the caller reaches
  // the barrier (barrier_wait) and that wakeup latency shows up as drain
  // time not spent executing (claim_stall). Either counter alone can be
  // zero on a pathological schedule; across 20 jobs their sum cannot be.
  for (int job = 0; job < 20; ++job) {
    pool.run(8, [&](int i) {
      for (volatile int spin = 0; spin < 20000; spin = spin + 1) {
      }
      sum += i;
    });
  }
  const auto pc = pool.drain_perf();
  EXPECT_GE(pc.barrier_wait_ns, 0);
  EXPECT_GE(pc.claim_stall_ns, 0);
  EXPECT_GT(pc.barrier_wait_ns + pc.claim_stall_ns, 0);
  // drain_perf is destructive: the next drain starts from zero.
  const auto drained = pool.drain_perf();
  EXPECT_EQ(drained.barrier_wait_ns, 0);
  EXPECT_EQ(drained.claim_stall_ns, 0);
  // Disabling stops accumulation again.
  pool.set_perf_enabled(false);
  pool.run(32, [&](int i) { sum += i; });
  const auto off = pool.drain_perf();
  EXPECT_EQ(off.barrier_wait_ns, 0);
  EXPECT_EQ(off.claim_stall_ns, 0);
}

TEST(ThreadPool, ChunkedGrainAcrossManyGenerations) {
  // Chunked claiming must stay sound across back-to-back jobs with varying
  // grains (the claim word packs generation and cursor together).
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  for (int job = 0; job < 200; ++job) {
    pool.run(100, [&](int i) { sum += i; }, 1 + job % 9);
  }
  EXPECT_EQ(sum.load(), 200LL * (99 * 100 / 2));
}

}  // namespace
}  // namespace ftc::util
