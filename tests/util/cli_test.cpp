#include "util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace ftc::util {
namespace {

Args make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesKeyValue) {
  const Args args = make_args({"--n=100", "--ratio=1.5"});
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 1.5);
}

TEST(Args, FlagWithoutValueIsTruthy) {
  const Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, MissingKeyReturnsFallback) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(args.get("nothing").has_value());
}

TEST(Args, PositionalArgumentsCollected) {
  const Args args = make_args({"file1", "--k=2", "file2"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Args, BadIntegerThrows) {
  const Args args = make_args({"--n=abc"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
}

TEST(Args, BadDoubleThrows) {
  const Args args = make_args({"--x=oops"});
  EXPECT_THROW((void)args.get_double("x", 0.0), std::invalid_argument);
}

TEST(Args, BoolSpellings) {
  EXPECT_TRUE(make_args({"--f=true"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f=on"}).get_bool("f", false));
  EXPECT_FALSE(make_args({"--f=false"}).get_bool("f", true));
  EXPECT_FALSE(make_args({"--f=0"}).get_bool("f", true));
  EXPECT_THROW((void)make_args({"--f=maybe"}).get_bool("f", true),
               std::invalid_argument);
}

TEST(Args, U64Parses) {
  const Args args = make_args({"--seed=18446744073709551615"});
  EXPECT_EQ(args.get_u64("seed", 0), ~std::uint64_t{0});
}

TEST(Args, IntListParses) {
  const Args args = make_args({"--ks=1,2,5,10"});
  EXPECT_EQ(args.get_int_list("ks", {}),
            (std::vector<long long>{1, 2, 5, 10}));
}

TEST(Args, IntListFallback) {
  const Args args = make_args({});
  EXPECT_EQ(args.get_int_list("ks", {3}), (std::vector<long long>{3}));
}

TEST(Args, IntListBadElementThrows) {
  const Args args = make_args({"--ks=1,x,3"});
  EXPECT_THROW((void)args.get_int_list("ks", {}), std::invalid_argument);
}

TEST(Args, LastDuplicateWins) {
  const Args args = make_args({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(Args, ValueWithEquals) {
  const Args args = make_args({"--expr=a=b"});
  EXPECT_EQ(args.get_string("expr", ""), "a=b");
}

TEST(Args, ProgramName) {
  const Args args = make_args({});
  EXPECT_EQ(args.program(), "prog");
}

TEST(ObsFlags, DefaultsWhenAbsent) {
  const ObsFlags flags = parse_obs_flags(make_args({"--n=100"}));
  EXPECT_FALSE(flags.enabled());
  EXPECT_TRUE(flags.trace_path.empty());
  EXPECT_TRUE(flags.metrics_path.empty());
  EXPECT_EQ(flags.capacity, 1 << 18);
}

TEST(ObsFlags, FullFlagGroupParses) {
  const ObsFlags flags = parse_obs_flags(
      make_args({"--trace=run.trace", "--metrics=m.json",
                 "--trace-categories=engine,repair", "--trace-severity=warn",
                 "--trace-capacity=1024"}));
  EXPECT_TRUE(flags.enabled());
  EXPECT_EQ(flags.trace_path, "run.trace");
  EXPECT_EQ(flags.metrics_path, "m.json");
  EXPECT_EQ(flags.categories, "engine,repair");
  EXPECT_EQ(flags.severity, "warn");
  EXPECT_EQ(flags.capacity, 1024);
}

TEST(ObsFlags, MetricsAloneEnables) {
  EXPECT_TRUE(parse_obs_flags(make_args({"--metrics=m.json"})).enabled());
}

TEST(ObsFlags, BadCapacityThrows) {
  EXPECT_THROW((void)parse_obs_flags(make_args({"--trace-capacity=lots"})),
               std::invalid_argument);
}

}  // namespace
}  // namespace ftc::util
