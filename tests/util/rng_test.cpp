#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ftc::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64SingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_u64(7, 7), 7u);
  }
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformI64HandlesNegativeRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sq / trials, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(99);
  Rng a = parent.split(5);
  Rng b = parent.split(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  const Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng parent(7);
  Rng copy(7);
  (void)parent.split(3);
  EXPECT_EQ(parent(), copy());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity ~ 1/100!
}

TEST(Rng, SampleWithoutReplacementBasics) {
  Rng rng(47);
  const auto sample = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(59);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  (void)rng();
}

}  // namespace
}  // namespace ftc::util
