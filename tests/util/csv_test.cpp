#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ftc::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ftc_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"n", "ratio"});
    w.write_row({"10", "1.5"});
    w.write_row({"20", "1.7"});
  }
  EXPECT_EQ(read_file(path_), "n,ratio\n10,1.5\n20,1.7\n");
}

TEST_F(CsvWriterTest, EscapesCells) {
  {
    CsvWriter w(path_, {"text"});
    w.write_row({"a,b"});
  }
  EXPECT_EQ(read_file(path_), "text\n\"a,b\"\n");
}

TEST(CsvWriter, DefaultConstructedIsNotOpen) {
  CsvWriter w;
  EXPECT_FALSE(w.is_open());
  w.write_row({"ignored"});  // must not crash
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace ftc::util
