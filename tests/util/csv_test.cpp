#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ftc::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ftc_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"n", "ratio"});
    w.write_row({"10", "1.5"});
    w.write_row({"20", "1.7"});
  }
  EXPECT_EQ(read_file(path_), "n,ratio\n10,1.5\n20,1.7\n");
}

TEST_F(CsvWriterTest, EscapesCells) {
  {
    CsvWriter w(path_, {"text"});
    w.write_row({"a,b"});
  }
  EXPECT_EQ(read_file(path_), "text\n\"a,b\"\n");
}

TEST(CsvWriter, DefaultConstructedIsNotOpen) {
  CsvWriter w;
  EXPECT_FALSE(w.is_open());
  w.write_row({"ignored"});  // must not crash
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvParse, PlainRecord) {
  std::size_t pos = 0;
  EXPECT_EQ(parse_csv_record("a,b,c", pos),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(pos, 5u);
}

TEST(CsvParse, EmptyCellsPreserved) {
  std::size_t pos = 0;
  EXPECT_EQ(parse_csv_record(",a,", pos),
            (std::vector<std::string>{"", "a", ""}));
}

TEST(CsvParse, QuotedCellWithCommaQuoteAndNewline) {
  std::size_t pos = 0;
  EXPECT_EQ(parse_csv_record("\"a,b\",\"say \"\"hi\"\"\",\"x\ny\"", pos),
            (std::vector<std::string>{"a,b", "say \"hi\"", "x\ny"}));
}

TEST(CsvParse, CrLfTerminator) {
  std::size_t pos = 0;
  const std::string text = "a,b\r\nc,d\n";
  EXPECT_EQ(parse_csv_record(text, pos),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parse_csv_record(text, pos),
            (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(pos, text.size());
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  std::size_t pos = 0;
  EXPECT_THROW((void)parse_csv_record("\"oops", pos), std::invalid_argument);
}

TEST(CsvParse, DataAfterClosingQuoteThrows) {
  std::size_t pos = 0;
  EXPECT_THROW((void)parse_csv_record("\"a\"b,c", pos),
               std::invalid_argument);
}

TEST(CsvParse, WholeDocumentIgnoresTrailingNewline) {
  EXPECT_EQ(parse_csv("h\n1\n2\n"),
            (std::vector<std::vector<std::string>>{{"h"}, {"1"}, {"2"}}));
  EXPECT_TRUE(parse_csv("").empty());
}

// Round-trip: every cell the writer can emit must come back verbatim
// through the parser, including the adversarial ones.
TEST_F(CsvWriterTest, RoundTripsThroughParser) {
  const std::vector<std::vector<std::string>> rows = {
      {"n", "label", "note"},
      {"1", "plain", ""},
      {"2", "comma,inside", "quote\"inside"},
      {"3", "line\nbreak", "\r\nwindows"},
      {"4", "\"fully quoted\"", ",\",\n\","},
  };
  {
    CsvWriter w(path_, rows[0]);
    for (std::size_t i = 1; i < rows.size(); ++i) w.write_row(rows[i]);
  }
  EXPECT_EQ(parse_csv(read_file(path_)), rows);
}

TEST(CsvParse, EscapeParseIsIdentityOnSingleCells) {
  for (const std::string cell :
       {"", "plain", "a,b", "\"", "\"\"", "a\nb", "a\r\nb", "trailing\"",
        ",,,", "\n"}) {
    std::size_t pos = 0;
    const std::string escaped = csv_escape(cell);
    EXPECT_EQ(parse_csv_record(escaped, pos),
              std::vector<std::string>{cell})
        << "cell: " << cell;
    EXPECT_EQ(pos, escaped.size());
  }
}

}  // namespace
}  // namespace ftc::util
