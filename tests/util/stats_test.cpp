#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ftc::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 4 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.add(7.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicStatistics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
}

TEST(Summarize, MedianOfEvenCount) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Summarize, UnsortedInputHandled) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, MeanCiString) {
  const std::vector<double> xs{1, 1, 1, 1};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.mean_ci_string(2), "1.00 ± 0.00");
}

TEST(PercentileSorted, Endpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 40.0);
}

TEST(PercentileSorted, Interpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 5.0);
}

TEST(PercentileSorted, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.5), 3.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto [a, b] = linear_fit(xs, ys);
  EXPECT_NEAR(a, 1.0, 1e-12);
  EXPECT_NEAR(b, 2.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 + 0.5 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const auto [a, b] = linear_fit(xs, ys);
  EXPECT_NEAR(a, 2.0, 0.05);
  EXPECT_NEAR(b, 0.5, 0.01);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

}  // namespace
}  // namespace ftc::util
