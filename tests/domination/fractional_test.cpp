#include "domination/fractional.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(FractionalSolution, Objective) {
  FractionalSolution x;
  x.x = {0.5, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(x.objective(), 1.0);
  EXPECT_DOUBLE_EQ(FractionalSolution{}.objective(), 0.0);
}

TEST(DualSolution, Objective) {
  DualSolution d;
  d.y = {0.5, 1.0};
  d.z = {0.25, 0.0};
  EXPECT_DOUBLE_EQ(d.objective(Demands{2, 1}), 2.0 * 0.5 - 0.25 + 1.0);
}

TEST(ClosedNeighborhoodSum, IncludesSelf) {
  const Graph g = graph::path(3);
  const std::vector<double> vals{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(closed_neighborhood_sum(g, 0, vals), 3.0);
  EXPECT_DOUBLE_EQ(closed_neighborhood_sum(g, 1, vals), 7.0);
  EXPECT_DOUBLE_EQ(closed_neighborhood_sum(g, 2, vals), 6.0);
}

TEST(PrimalFeasible, UniformHalfOnTriangle) {
  const Graph g = graph::complete(3);
  FractionalSolution x;
  x.x = {0.5, 0.5, 0.5};
  EXPECT_TRUE(primal_feasible(g, x, uniform_demands(3, 1)));
  EXPECT_FALSE(primal_feasible(g, x, uniform_demands(3, 2)));
}

TEST(PrimalFeasible, BoxConstraintViolations) {
  const Graph g = graph::complete(3);
  FractionalSolution x;
  x.x = {1.5, 0.0, 0.0};
  EXPECT_FALSE(primal_feasible(g, x, uniform_demands(3, 1)));
  x.x = {-0.5, 1.0, 1.0};
  EXPECT_FALSE(primal_feasible(g, x, uniform_demands(3, 1)));
}

TEST(PrimalFeasible, EpsilonTolerance) {
  const Graph g = graph::complete(2);
  FractionalSolution x;
  x.x = {0.5, 0.5 - 1e-9};  // coverage 1 - 1e-9
  EXPECT_TRUE(primal_feasible(g, x, uniform_demands(2, 1), 1e-7));
  EXPECT_FALSE(primal_feasible(g, x, uniform_demands(2, 1), 1e-12));
}

TEST(MaxPrimalViolation, SignConvention) {
  const Graph g = graph::complete(2);
  FractionalSolution x;
  x.x = {0.25, 0.25};
  // Coverage 0.5 against demand 1 -> violation 0.5.
  EXPECT_NEAR(max_primal_violation(g, x, uniform_demands(2, 1)), 0.5, 1e-12);
  x.x = {1.0, 1.0};
  EXPECT_LT(max_primal_violation(g, x, uniform_demands(2, 1)), 0.0);
}

TEST(MaxDualLhs, Computes) {
  const Graph g = graph::path(2);
  DualSolution d;
  d.y = {0.5, 0.75};
  d.z = {0.25, 0.0};
  // Node 0: 0.5+0.75-0.25 = 1.0; node 1: 1.25.
  EXPECT_DOUBLE_EQ(max_dual_lhs(g, d), 1.25);
}

TEST(DualFeasible, Cases) {
  const Graph g = graph::path(2);
  DualSolution d;
  d.y = {0.5, 0.5};
  d.z = {0.0, 0.0};
  EXPECT_TRUE(dual_feasible(g, d));
  d.y = {0.8, 0.8};
  EXPECT_FALSE(dual_feasible(g, d));  // LHS 1.6 > 1
  d.y = {0.5, 0.5};
  d.z = {-0.5, 0.0};
  EXPECT_FALSE(dual_feasible(g, d));  // negative z
}

TEST(ClampTinyNegatives, OnlyTinyOnesChange) {
  std::vector<double> v{-1e-9, -0.5, 0.3, -1e-8};
  clamp_tiny_negatives(v, 1e-7);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], -0.5);
  EXPECT_DOUBLE_EQ(v[2], 0.3);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(EmptyGraph, CheckersAreSafe) {
  const Graph g;
  FractionalSolution x;
  DualSolution d;
  EXPECT_TRUE(primal_feasible(g, x, {}));
  EXPECT_TRUE(dual_feasible(g, d));
  EXPECT_DOUBLE_EQ(max_primal_violation(g, x, {}), 0.0);
  EXPECT_DOUBLE_EQ(max_dual_lhs(g, d), 0.0);
}

}  // namespace
}  // namespace ftc::domination
