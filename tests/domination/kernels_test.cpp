// Property tests for the word-packed coverage/deficiency kernels
// (domination/kernels.h): bitwise equality with the scalar references in
// domination.h across every topology family the fuzzer generates, at every
// membership density that matters (empty, singleton, sparse → the scatter
// kernel, dense → the gather kernel, full), in both coverage modes, and at
// word-boundary sizes. DESIGN.md §11.
#include "domination/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "graph/generators.h"
#include "testing/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(MembershipBits, SetClearTestCount) {
  MembershipBits bits;
  bits.reset(130);
  EXPECT_EQ(bits.n(), 130);
  EXPECT_EQ(bits.count(), 0);
  for (NodeId v : {0, 63, 64, 65, 127, 128, 129}) {
    EXPECT_FALSE(bits.test(v));
    bits.set(v);
    EXPECT_TRUE(bits.test(v));
  }
  EXPECT_EQ(bits.count(), 7);
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 6);
  bits.reset(130);
  EXPECT_EQ(bits.count(), 0);
}

TEST(MembershipBits, AssignFromBitmapAndList) {
  std::vector<std::uint8_t> bitmap(70, 0);
  bitmap[0] = bitmap[63] = bitmap[64] = bitmap[69] = 1;
  MembershipBits a;
  a.assign(bitmap);
  MembershipBits b;
  const std::vector<NodeId> list{0, 63, 64, 69};
  b.assign(70, list);
  for (NodeId v = 0; v < 70; ++v) {
    EXPECT_EQ(a.test(v), b.test(v)) << "v=" << v;
  }
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(b.count(), 4);
}

/// Memberships of increasing density: exercises both the scatter (sparse)
/// and gather (dense) kernel paths plus the edges of the density switch.
std::vector<std::vector<std::uint8_t>> membership_ladder(NodeId n,
                                                         std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> out;
  out.emplace_back(n, 0);                   // empty
  auto single = std::vector<std::uint8_t>(n, 0);
  single[static_cast<std::size_t>(n / 2)] = 1;
  out.push_back(std::move(single));
  std::uint64_t state = seed;
  auto sparse = std::vector<std::uint8_t>(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    sparse[static_cast<std::size_t>(v)] =
        (util::splitmix64(state) % 16 == 0) ? 1 : 0;
  }
  out.push_back(std::move(sparse));
  auto dense = std::vector<std::uint8_t>(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    dense[static_cast<std::size_t>(v)] =
        static_cast<std::uint8_t>(util::splitmix64(state) & 1);
  }
  out.push_back(std::move(dense));
  out.emplace_back(n, 1);                   // full
  return out;
}

/// Asserts every packed kernel agrees exactly with the scalar reference on
/// one (graph, membership) pair.
void expect_kernels_match(const Graph& g,
                          const std::vector<std::uint8_t>& members,
                          const Demands& demands, CoverageScratch& scratch) {
  const auto ref_cover = closed_coverage_counts(g, members);
  MembershipBits bits;
  bits.assign(members);
  std::vector<std::int32_t> packed(static_cast<std::size_t>(g.n()), -1);
  closed_coverage_counts(g, bits, packed);
  ASSERT_EQ(ref_cover, packed);

  const auto set = to_node_list(members);
  for (const Mode mode : {Mode::kClosedNeighborhood, Mode::kOpenForNonMembers}) {
    std::int64_t ref_def = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (mode == Mode::kOpenForNonMembers && members[i]) continue;
      ref_def += std::max<std::int32_t>(0, demands[i] - ref_cover[i]);
    }
    EXPECT_EQ(deficiency(g, bits, demands, mode), ref_def);
    EXPECT_EQ(deficiency(g, set, demands, mode, scratch), ref_def);
    EXPECT_EQ(is_k_dominating(g, set, demands, mode, scratch), ref_def == 0);
    EXPECT_EQ(deficiency(g, set, demands, mode), ref_def);  // allocating path
  }
}

TEST(PackedKernels, EqualScalarAcrossAllFamilies) {
  CoverageScratch scratch;
  for (std::int32_t f = 0; f < testing::kGraphFamilyCount; ++f) {
    testing::FuzzCase c;
    c.case_seed = 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(f);
    c.family = static_cast<testing::GraphFamily>(f);
    c.n = 48;
    c.p = 0.15;
    c.aux = 3;
    c.avg_degree = 6.0;
    c.graph_seed = 7 + static_cast<std::uint64_t>(f);
    c.k = 2;
    const testing::Instance inst = testing::materialize(c);
    const Graph& g = inst.graph();
    SCOPED_TRACE(testing::family_name(c.family));
    for (const auto& members : membership_ladder(g.n(), c.case_seed)) {
      expect_kernels_match(g, members, inst.demands, scratch);
    }
  }
}

TEST(PackedKernels, WordBoundarySizes) {
  CoverageScratch scratch;
  for (const NodeId n : {1, 2, 63, 64, 65, 127, 128, 129, 192}) {
    const Graph g = graph::cycle(n);
    const Demands demands = uniform_demands(n, 2);
    SCOPED_TRACE(n);
    for (const auto& members :
         membership_ladder(n, 0xC0FFEEULL + static_cast<std::uint64_t>(n))) {
      expect_kernels_match(g, members, demands, scratch);
    }
  }
}

TEST(PackedKernels, ScratchReuseAcrossShrinkingInstances) {
  // A scratch sized by a big instance must stay correct on smaller ones
  // (reset() keeps capacity; logical size must still be exact).
  CoverageScratch scratch;
  util::Rng rng(11);
  const Graph big = graph::gnp(200, 0.05, rng);
  const Demands big_d = uniform_demands(200, 2);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < big.n(); ++v) all.push_back(v);
  EXPECT_EQ(deficiency(big, all, big_d, Mode::kClosedNeighborhood, scratch), 0);

  const Graph small = graph::star(9);
  const std::vector<NodeId> center{0};
  EXPECT_TRUE(is_k_dominating(small, center, uniform_demands(9, 1),
                              Mode::kClosedNeighborhood, scratch));
  EXPECT_FALSE(is_k_dominating(small, center, uniform_demands(9, 2),
                               Mode::kClosedNeighborhood, scratch));
}

TEST(PackedKernels, EmptyGraph) {
  const Graph g = graph::empty(5);
  const Demands demands = uniform_demands(5, 1);
  CoverageScratch scratch;
  const std::vector<NodeId> none;
  EXPECT_EQ(deficiency(g, none, demands, Mode::kClosedNeighborhood, scratch),
            5);
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  EXPECT_EQ(deficiency(g, all, demands, Mode::kClosedNeighborhood, scratch), 0);
  EXPECT_EQ(deficiency(g, all, demands, Mode::kOpenForNonMembers, scratch), 0);
}

}  // namespace
}  // namespace ftc::domination
