#include "domination/bounds.h"

#include <gtest/gtest.h>

#include "algo/baseline/greedy.h"
#include "algo/exact/exact.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(PackingBound, Clique) {
  const Graph g = graph::complete(5);
  // Total demand 5, capacity Δ+1=5 -> bound 1 (indeed OPT=1 for k=1).
  EXPECT_EQ(packing_lower_bound(g, uniform_demands(5, 1)), 1);
  EXPECT_EQ(packing_lower_bound(g, uniform_demands(5, 3)), 3);
}

TEST(PackingBound, Path) {
  const Graph g = graph::path(9);  // Δ=2, capacity 3
  EXPECT_EQ(packing_lower_bound(g, uniform_demands(9, 1)), 3);
}

TEST(PackingBound, EmptyGraph) {
  EXPECT_EQ(packing_lower_bound(Graph{}, {}), 0);
}

TEST(MaxDemandBound, PicksMax) {
  EXPECT_EQ(max_demand_lower_bound(Demands{1, 3, 2}), 3);
  EXPECT_EQ(max_demand_lower_bound({}), 0);
}

TEST(DisjointPackingBound, IndependentNodes) {
  const Graph g = graph::empty(4);
  EXPECT_EQ(disjoint_packing_lower_bound(g, uniform_demands(4, 1)), 4);
}

TEST(DisjointPackingBound, CliqueGivesSingleDemand) {
  const Graph g = graph::complete(6);
  EXPECT_EQ(disjoint_packing_lower_bound(g, uniform_demands(6, 2)), 2);
}

TEST(DisjointPackingBound, PathSpacing) {
  // Path of 7: picking node 0 blocks nodes up to distance 2; a valid
  // packing of disjoint closed neighborhoods has >= 2 nodes.
  const Graph g = graph::path(7);
  EXPECT_GE(disjoint_packing_lower_bound(g, uniform_demands(7, 1)), 2);
}

TEST(DisjointPackingBound, IsSound) {
  // The bound never exceeds the true optimum on random small instances.
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gnp(16, 0.2, rng);
    const Demands d = clamp_demands(g, uniform_demands(16, 2));
    const auto exact = algo::exact_kmds(g, d);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(disjoint_packing_lower_bound(g, d),
              static_cast<std::int64_t>(exact.set.size()))
        << "trial " << trial;
  }
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
}

TEST(DualLowerBound, FlooredAtZero) {
  DualSolution d;
  d.y = {0.0};
  d.z = {0.5};
  EXPECT_DOUBLE_EQ(dual_lower_bound(d, Demands{1}), 0.0);
  d.y = {0.5};
  d.z = {0.0};
  EXPECT_DOUBLE_EQ(dual_lower_bound(d, Demands{2}), 1.0);
}

TEST(BestLowerBound, CombinesAll) {
  const Graph g = graph::complete(4);
  const Demands d = uniform_demands(4, 2);
  // packing: ceil(8/4)=2; max demand 2; disjoint packing 2.
  EXPECT_DOUBLE_EQ(best_lower_bound(g, d), 2.0);
  // Greedy of size 8 with H(4) ~ 2.083 -> 3.84, better than 2.
  EXPECT_GT(best_lower_bound(g, d, 8), 3.5);
  // Explicit dual bound dominates when largest.
  EXPECT_DOUBLE_EQ(best_lower_bound(g, d, 0, 7.5), 7.5);
}

TEST(BestLowerBound, SoundAgainstExact) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gnp(14, 0.25, rng);
    const Demands d = clamp_demands(g, uniform_demands(14, 2));
    const auto greedy = algo::greedy_kmds(g, d);
    const auto exact = algo::exact_kmds(g, d);
    ASSERT_TRUE(exact.optimal);
    const double bound = best_lower_bound(
        g, d, static_cast<std::int64_t>(greedy.set.size()));
    EXPECT_LE(bound, static_cast<double>(exact.set.size()) + 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ftc::domination
