#include "domination/profiles.h"

#include <gtest/gtest.h>

#include "algo/baseline/greedy.h"
#include "algo/pipeline.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(Profiles, UniformClamps) {
  const Graph g = graph::path(4);  // degrees 1,2,2,1
  const Demands d = profile_uniform(g, 5);
  EXPECT_EQ(d, (Demands{2, 3, 3, 2}));
  EXPECT_TRUE(instance_feasible(g, d));
}

TEST(Profiles, RandomStaysInRangeAndFeasible) {
  util::Rng rng(1);
  const Graph g = graph::gnp(60, 0.15, rng);
  const Demands d = profile_random(g, 2, 4, rng);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto k = d[static_cast<std::size_t>(v)];
    EXPECT_GE(k, std::min<std::int32_t>(2, g.degree(v) + 1));
    EXPECT_LE(k, 4);
  }
  EXPECT_TRUE(instance_feasible(g, d));
}

TEST(Profiles, DegreeProportionalScalesWithDegree) {
  const Graph g = graph::star(9);  // hub degree 8, leaves 1
  const Demands d = profile_degree_proportional(g, 0.5);
  EXPECT_EQ(d[0], 4);  // round(0.5 * 8)
  for (std::size_t v = 1; v < 9; ++v) EXPECT_EQ(d[v], 1);
  EXPECT_TRUE(instance_feasible(g, d));
}

TEST(Profiles, CriticalNodes) {
  util::Rng rng(2);
  const Graph g = graph::gnp(40, 0.3, rng);
  const std::vector<NodeId> critical{3, 7};
  const Demands d = profile_critical_nodes(g, critical, 4, 1);
  EXPECT_EQ(d[3], std::min<std::int32_t>(4, g.degree(3) + 1));
  EXPECT_EQ(d[0], 1);
  EXPECT_TRUE(instance_feasible(g, d));
}

TEST(Profiles, BorderDemandsMore) {
  util::Rng rng(3);
  const auto udg = geom::uniform_udg_with_degree(300, 12.0, rng);
  const Demands d = profile_border(udg, 1.0, 3, 1);
  // There must be both border and interior nodes at this size.
  bool saw_border = false, saw_interior = false;
  for (std::int32_t k : d) {
    if (k >= 2) saw_border = true;   // clamped 3 is still >= 2 for deg >= 1
    if (k == 1) saw_interior = true;
  }
  EXPECT_TRUE(saw_border);
  EXPECT_TRUE(saw_interior);
  EXPECT_TRUE(instance_feasible(udg.graph, d));
}

TEST(Profiles, HeterogeneousDemandsSolveEndToEnd) {
  util::Rng rng(4);
  const Graph g = graph::gnp(80, 0.1, rng);
  const Demands d = profile_degree_proportional(g, 0.3);
  const auto greedy = algo::greedy_kmds(g, d);
  EXPECT_TRUE(greedy.fully_satisfied);
  EXPECT_TRUE(is_k_dominating(g, greedy.set, d));
}


TEST(Profiles, FullPipelineHonorsHeterogeneousDemands) {
  util::Rng rng(5);
  const auto udg = geom::uniform_udg_with_degree(200, 14.0, rng);
  const Demands d = profile_border(udg, 1.5, 3, 1);
  ftc::algo::PipelineOptions opts;
  opts.t = 3;
  opts.seed = 5;
  const auto pipe = ftc::algo::run_kmds_pipeline(udg.graph, d, opts);
  EXPECT_TRUE(is_k_dominating(udg.graph, pipe.set(), d));
}

}  // namespace
}  // namespace ftc::domination
