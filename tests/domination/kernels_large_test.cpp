// LARGE-tier kernel contract: packed coverage/deficiency kernels equal the
// scalar references at one million nodes — the scale BENCH_algo.json's
// speedup claims are measured at. Lives in ftc_large_tests (ctest -L LARGE)
// so the default edit-compile-test loop doesn't pay for it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "domination/domination.h"
#include "domination/kernels.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(KernelsLarge, MillionNodeGridMatchesScalar) {
  const Graph g = graph::grid(1000, 1000);
  const auto n = static_cast<std::size_t>(g.n());
  ASSERT_EQ(n, 1'000'000u);
  const Demands demands = uniform_demands(g.n(), 2);

  // Sparse (~n/64, scatter path) and dense (~n/2, gather path) memberships.
  std::vector<std::uint8_t> sparse(n, 0), dense(n, 0);
  std::uint64_t state = 0x1000'0001ULL;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = util::splitmix64(state);
    sparse[i] = (r % 64 == 0) ? 1 : 0;
    dense[i] = static_cast<std::uint8_t>(r & 1);
  }

  CoverageScratch scratch;
  for (const auto* members : {&sparse, &dense}) {
    const auto ref_cover = closed_coverage_counts(g, *members);
    MembershipBits bits;
    bits.assign(*members);
    std::vector<std::int32_t> packed(n, -1);
    closed_coverage_counts(g, bits, packed);
    ASSERT_EQ(ref_cover, packed);

    const auto set = to_node_list(*members);
    for (const Mode mode :
         {Mode::kClosedNeighborhood, Mode::kOpenForNonMembers}) {
      std::int64_t ref_def = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mode == Mode::kOpenForNonMembers && (*members)[i]) continue;
        ref_def += std::max<std::int32_t>(0, demands[i] - ref_cover[i]);
      }
      EXPECT_EQ(deficiency(g, bits, demands, mode), ref_def);
      EXPECT_EQ(deficiency(g, set, demands, mode, scratch), ref_def);
    }
  }
}

}  // namespace
}  // namespace ftc::domination
