#include "domination/domination.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(UniformDemands, Basics) {
  const Demands d = uniform_demands(4, 3);
  EXPECT_EQ(d.size(), 4u);
  for (auto k : d) EXPECT_EQ(k, 3);
}

TEST(ClosedCoverage, SelfCounts) {
  const Graph g = graph::path(3);
  const std::vector<std::uint8_t> members{0, 1, 0};  // only node 1
  const auto cover = closed_coverage_counts(g, members);
  EXPECT_EQ(cover, (std::vector<std::int32_t>{1, 1, 1}));
}

TEST(ClosedCoverage, AllMembers) {
  const Graph g = graph::cycle(4);
  const std::vector<std::uint8_t> members{1, 1, 1, 1};
  const auto cover = closed_coverage_counts(g, members);
  for (auto c : cover) EXPECT_EQ(c, 3);  // self + 2 neighbors
}

TEST(Membership, RoundTrip) {
  const Graph g = graph::path(5);
  const std::vector<NodeId> set{1, 3};
  const auto members = to_membership(g, set);
  EXPECT_EQ(to_node_list(members), set);
}

TEST(IsKDominating, WholeSetAlwaysDominatesClosedMode) {
  util::Rng rng(1);
  const Graph g = graph::gnp(30, 0.1, rng);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.n(); ++v) all.push_back(v);
  EXPECT_TRUE(is_k_dominating(g, all, 1, Mode::kClosedNeighborhood));
}

TEST(IsKDominating, EmptySetFailsUnlessZeroDemand) {
  const Graph g = graph::path(3);
  EXPECT_FALSE(is_k_dominating(g, {}, 1));
  EXPECT_TRUE(is_k_dominating(g, {}, 0));
}

TEST(IsKDominating, StarCenterDominates) {
  const Graph g = graph::star(6);
  const std::vector<NodeId> center{0};
  EXPECT_TRUE(is_k_dominating(g, center, 1, Mode::kClosedNeighborhood));
  EXPECT_TRUE(is_k_dominating(g, center, 1, Mode::kOpenForNonMembers));
  EXPECT_FALSE(is_k_dominating(g, center, 2, Mode::kClosedNeighborhood));
}

TEST(IsKDominating, ModesDifferOnMembers) {
  // Path 0-1-2 with S = {0, 2}: node 0 has closed coverage 1 (<2) but as a
  // member it needs nothing under the paper definition. Node 1 has open
  // coverage 2.
  const Graph g = graph::path(3);
  const std::vector<NodeId> set{0, 2};
  EXPECT_TRUE(is_k_dominating(g, set, 2, Mode::kOpenForNonMembers));
  EXPECT_FALSE(is_k_dominating(g, set, 2, Mode::kClosedNeighborhood));
}

TEST(IsKDominating, KFoldOnClique) {
  const Graph g = graph::complete(5);
  const std::vector<NodeId> set{0, 1, 2};
  EXPECT_TRUE(is_k_dominating(g, set, 3, Mode::kClosedNeighborhood));
  EXPECT_FALSE(is_k_dominating(g, set, 4, Mode::kClosedNeighborhood));
}

TEST(IsKDominating, PerNodeDemands) {
  const Graph g = graph::path(3);
  Demands d{1, 2, 1};
  EXPECT_TRUE(is_k_dominating(g, std::vector<NodeId>{1}, Demands{1, 1, 1}));
  // Node 1 needs 2: {1} gives it closed coverage 1 only.
  EXPECT_FALSE(is_k_dominating(g, std::vector<NodeId>{1}, d));
  EXPECT_TRUE(is_k_dominating(g, std::vector<NodeId>{0, 1}, d));
}

TEST(Deficiency, CountsShortfall) {
  const Graph g = graph::path(3);
  // Empty set, k=2 everywhere: each node lacks 2 -> total 6.
  EXPECT_EQ(deficiency(g, {}, uniform_demands(3, 2)), 6);
  // S={1}: closed coverage 1 everywhere -> each lacks 1 -> total 3.
  EXPECT_EQ(deficiency(g, std::vector<NodeId>{1}, uniform_demands(3, 2)), 3);
}

TEST(Deficiency, OpenModeIgnoresMembers) {
  const Graph g = graph::path(3);
  const std::vector<NodeId> set{0, 1, 2};
  EXPECT_EQ(deficiency(g, set, uniform_demands(3, 5),
                       Mode::kOpenForNonMembers),
            0);
}

TEST(InstanceFeasible, ClosedModeRequiresDegreePlusOne) {
  const Graph g = graph::path(3);  // degrees 1,2,1
  EXPECT_TRUE(instance_feasible(g, uniform_demands(3, 2)));
  EXPECT_FALSE(instance_feasible(g, uniform_demands(3, 3)));
  EXPECT_TRUE(instance_feasible(g, Demands{2, 3, 2}));
}

TEST(InstanceFeasible, OpenModeAlwaysFeasible) {
  const Graph g = graph::empty(3);
  EXPECT_TRUE(
      instance_feasible(g, uniform_demands(3, 99), Mode::kOpenForNonMembers));
}

TEST(ClampDemands, ClampsToClosedNeighborhood) {
  const Graph g = graph::path(3);
  const Demands clamped = clamp_demands(g, uniform_demands(3, 5));
  EXPECT_EQ(clamped, (Demands{2, 3, 2}));
  EXPECT_TRUE(instance_feasible(g, clamped));
}

TEST(Deficiency, ZeroForFeasibleCover) {
  util::Rng rng(2);
  const Graph g = graph::gnp(40, 0.3, rng);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.n(); ++v) all.push_back(v);
  const Demands d = clamp_demands(g, uniform_demands(g.n(), 3));
  EXPECT_EQ(deficiency(g, all, d), 0);
}

}  // namespace
}  // namespace ftc::domination
