#include "domination/lp_solver.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/exact/exact.h"
#include "algo/lp/lp_kmds.h"
#include "domination/bounds.h"
#include "domination/fractional.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::domination {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(LpExact, EmptyGraph) {
  const auto result = solve_lp_exact(Graph{}, {});
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(LpExact, SingleNode) {
  const Graph g = graph::empty(1);
  const auto result = solve_lp_exact(g, uniform_demands(1, 1));
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
}

TEST(LpExact, CliqueOptimumIsK) {
  // Vertex-transitive: the uniform solution x = k/n is optimal, objective k.
  for (NodeId n : {4, 7}) {
    for (std::int32_t k : {1, 2, 3}) {
      const Graph g = graph::complete(n);
      const auto result = solve_lp_exact(g, uniform_demands(n, k));
      ASSERT_TRUE(result.feasible) << "n=" << n << " k=" << k;
      EXPECT_NEAR(result.objective, static_cast<double>(k), 1e-7)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LpExact, CycleOptimumIsNThirds) {
  // C_n is vertex-transitive with closed neighborhoods of size 3:
  // OPT_f = n/3 for k=1.
  for (NodeId n : {3, 6, 9, 12}) {
    const Graph g = graph::cycle(n);
    const auto result = solve_lp_exact(g, uniform_demands(n, 1));
    ASSERT_TRUE(result.feasible);
    EXPECT_NEAR(result.objective, static_cast<double>(n) / 3.0, 1e-7)
        << "n=" << n;
  }
}

TEST(LpExact, StarOptimum) {
  // Star K_{1,m}: x_center = 1 covers everyone once; OPT_f = 1 for k=1.
  const Graph g = graph::star(8);
  const auto result = solve_lp_exact(g, uniform_demands(8, 1));
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, 1.0, 1e-7);
}

TEST(LpExact, InfeasibleDetected) {
  const Graph g = graph::path(3);
  const auto result = solve_lp_exact(g, uniform_demands(3, 4));
  EXPECT_FALSE(result.feasible);
}

TEST(LpExact, SolutionIsPrimalFeasible) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(40, 0.12, rng);
    for (std::int32_t k : {1, 2, 3}) {
      const auto d = clamp_demands(g, uniform_demands(40, k));
      const auto result = solve_lp_exact(g, d);
      ASSERT_TRUE(result.feasible) << "trial " << trial;
      FractionalSolution x;
      x.x = result.x;
      EXPECT_TRUE(primal_feasible(g, x, d, 1e-6))
          << "trial " << trial << " k " << k;
      EXPECT_NEAR(x.objective(), result.objective, 1e-6);
    }
  }
}

TEST(LpExact, BracketedByBoundsAndIntegerOptimum) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(16, 0.25, rng);
    const auto d = clamp_demands(g, uniform_demands(16, 2));
    const auto lp = solve_lp_exact(g, d);
    ASSERT_TRUE(lp.feasible);
    // OPT_f <= OPT_int.
    const auto ilp = algo::exact_kmds(g, d);
    ASSERT_TRUE(ilp.optimal);
    EXPECT_LE(lp.objective, static_cast<double>(ilp.set.size()) + 1e-7);
    // OPT_f >= packing bound... careful: the packing bound Σk/(Δ+1) is a
    // valid fractional bound without the ceiling.
    const double packing =
        static_cast<double>(16 * 2) / (g.max_degree() + 1);
    EXPECT_GE(lp.objective, packing - 1e-7);
  }
}

TEST(LpExact, Algorithm1NeverBeatsOptimum) {
  // Algorithm 1's fractional objective must be >= OPT_f, and its scaled
  // dual objective must be <= OPT_f (weak duality) — the LP solver sits
  // exactly between the two halves of the paper's analysis.
  util::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gnp(35, 0.15, rng);
    const auto d = clamp_demands(g, uniform_demands(35, 2));
    const auto opt = solve_lp_exact(g, d);
    ASSERT_TRUE(opt.feasible);
    for (int t : {1, 3}) {
      algo::LpOptions opts;
      opts.t = t;
      const auto alg1 = algo::solve_fractional_kmds(g, d, opts);
      EXPECT_GE(alg1.primal.objective(), opt.objective - 1e-6)
          << "trial " << trial << " t " << t;
      EXPECT_LE(alg1.dual_bound(d), opt.objective + 1e-6)
          << "trial " << trial << " t " << t;
      // And the true ratio respects Theorem 4.5.
      EXPECT_LE(alg1.primal.objective(),
                algo::theorem45_bound(t, g.max_degree()) * opt.objective +
                    1e-6);
    }
  }
}

TEST(LpExact, PerNodeDemands) {
  const Graph g = graph::star(5);
  Demands d{3, 1, 1, 1, 1};
  const auto result = solve_lp_exact(g, d);
  ASSERT_TRUE(result.feasible);
  // Center needs 3 from its closed neighborhood of 5; leaves need 1 each,
  // satisfiable by x_center = 1 plus 2 units spread over leaves.
  EXPECT_NEAR(result.objective, 3.0, 1e-7);
}

TEST(LpExact, FractionalBeatsIntegralOnCycle) {
  // C_4, k=1: integral optimum is 2, fractional is 4/3.
  const Graph g = graph::cycle(4);
  const auto lp = solve_lp_exact(g, uniform_demands(4, 1));
  const auto ilp = algo::exact_kmds(g, uniform_demands(4, 1));
  ASSERT_TRUE(lp.feasible && ilp.optimal);
  EXPECT_NEAR(lp.objective, 4.0 / 3.0, 1e-7);
  EXPECT_EQ(ilp.set.size(), 2u);
}

class LpExactSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(LpExactSweep, OptimalityCertificates) {
  const auto [k, trial] = GetParam();
  util::Rng rng(4000 + static_cast<std::uint64_t>(trial));
  const Graph g = graph::gnp(25, 0.2, rng);
  const auto d = clamp_demands(g, uniform_demands(25, k));
  const auto result = solve_lp_exact(g, d);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.iteration_limit_hit);
  FractionalSolution x;
  x.x = result.x;
  EXPECT_TRUE(primal_feasible(g, x, d, 1e-6));
  // No integral solution can be cheaper.
  const auto ilp = algo::exact_kmds(g, d);
  ASSERT_TRUE(ilp.optimal);
  EXPECT_LE(result.objective, static_cast<double>(ilp.set.size()) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LpExactSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Range(0, 5)));

}  // namespace
}  // namespace ftc::domination
