// Perf-attribution plane (obs/perf.h, DESIGN.md §12): staging discipline,
// barrier-merge semantics, derived imbalance/straggler/coverage statistics,
// the ring buffer, the JSONL side channel, and the "perf."-gauge exclusion
// contract, plus end-to-end wiring through SyncNetwork and the LP solver.
#include "obs/perf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "algo/lp/lp_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "obs/plane.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;
using obs::kPerfPhaseCount;
using obs::PerfPhase;
using obs::PerfPlane;

TEST(PerfPhases, NamesAndClassificationAreConsistent) {
  // Every phase has a stable snake_case name (these are JSONL keys the
  // ftc-trace analytics parse — renames are format breaks).
  for (int p = 0; p < kPerfPhaseCount; ++p) {
    EXPECT_FALSE(obs::perf_phase_name(static_cast<PerfPhase>(p)).empty());
  }
  EXPECT_EQ(obs::perf_phase_name(PerfPhase::kCompute), "compute");
  EXPECT_EQ(obs::perf_phase_name(PerfPhase::kChannelDecide), "channel_decide");
  // Nested/overlapping phases must never count toward coverage.
  EXPECT_TRUE(obs::perf_phase_top_level(PerfPhase::kCompute));
  EXPECT_TRUE(obs::perf_phase_top_level(PerfPhase::kLpZPass));
  EXPECT_FALSE(obs::perf_phase_top_level(PerfPhase::kChannelDecide));
  EXPECT_FALSE(obs::perf_phase_top_level(PerfPhase::kBarrierWait));
  EXPECT_FALSE(obs::perf_phase_top_level(PerfPhase::kClaimStall));
  // Shard slots round-trip; owner-only phases have no slot.
  for (int slot = 0; slot < obs::kPerfShardPhaseCount; ++slot) {
    EXPECT_EQ(obs::perf_shard_slot(obs::perf_shard_phase(slot)), slot);
  }
  EXPECT_EQ(obs::perf_shard_slot(PerfPhase::kFinalize), -1);
  EXPECT_EQ(obs::perf_shard_slot(PerfPhase::kDeliverPrefix), -1);
}

TEST(PerfPlane, EndRoundFoldsShardStagingAndOwnerPhases) {
  PerfPlane perf;
  perf.set_shards(3);
  // Owner-side laps: the dispatch wall time of the parallel phases plus the
  // sequential barriers. (Worker sums never enter the phase table — they
  // would double-count the dispatch wall the owner already measured.)
  perf.add(PerfPhase::kCompute, 350);
  perf.add(PerfPhase::kDeliverPrefix, 50);
  perf.add(PerfPhase::kFinalize, 25);
  // Worker-side staging, written out of shard order on purpose.
  perf.shard_add(2, PerfPhase::kCompute, 300);
  perf.shard_add(0, PerfPhase::kCompute, 100);
  perf.shard_add(1, PerfPhase::kCompute, 200);
  perf.shard_add(1, PerfPhase::kDeliverCount, 40);
  perf.note_shard_work(2, 10, 70);
  perf.end_round(0, 1000);

  ASSERT_EQ(perf.rounds(), 1);
  const auto recent = perf.recent();
  ASSERT_EQ(recent.size(), 1u);
  const auto& r = recent[0];
  EXPECT_EQ(r.total_ns, 1000);
  // The phase table carries the owner laps; the per-shard rows carry the
  // worker staging.
  EXPECT_EQ(r.phase_ns[static_cast<int>(PerfPhase::kCompute)], 350);
  EXPECT_EQ(r.phase_ns[static_cast<int>(PerfPhase::kDeliverPrefix)], 50);
  EXPECT_EQ(r.phase_ns[static_cast<int>(PerfPhase::kFinalize)], 25);
  ASSERT_EQ(r.shards.size(), 3u);
  EXPECT_EQ(r.shards[0].busy_ns(), 100);
  EXPECT_EQ(r.shards[1].busy_ns(), 240);
  EXPECT_EQ(r.shards[2].busy_ns(), 300);
  EXPECT_EQ(r.shards[2].nodes, 10);
  EXPECT_EQ(r.shards[2].messages, 70);
  // Imbalance = max/mean busy: 300 / ((100+240+300)/3).
  EXPECT_NEAR(r.imbalance, 300.0 / (640.0 / 3.0), 1e-9);
  EXPECT_EQ(r.straggler, 2);
  // attributed = Σ top-level owner laps = 350 + 50 + 25.
  EXPECT_EQ(r.attributed_ns(), 425);
  EXPECT_NEAR(perf.attribution_coverage(), 425.0 / 1000.0, 1e-9);

  // Staging was consumed: an empty follow-up round folds to zeros.
  perf.end_round(1, 500);
  EXPECT_EQ(perf.recent()[1].attributed_ns(), 0);
  EXPECT_EQ(perf.recent()[1].straggler, -1);
  EXPECT_DOUBLE_EQ(perf.recent()[1].imbalance, 1.0);
}

TEST(PerfPlane, NestedChannelDecideIsReportedButNotCovered) {
  PerfPlane perf;
  perf.set_shards(2);
  perf.add(PerfPhase::kDeliverCount, 100);           // owner dispatch lap
  perf.shard_add(0, PerfPhase::kDeliverCount, 100);  // worker share
  perf.shard_add(0, PerfPhase::kChannelDecide, 60);  // nested inside count
  perf.end_round(0, 200);
  const auto recent = perf.recent();
  const auto& r = recent[0];
  // Channel decide has no owner lap, so its worker-staged total is folded
  // into the phase table at the barrier…
  EXPECT_EQ(r.phase_ns[static_cast<int>(PerfPhase::kChannelDecide)], 60);
  EXPECT_EQ(perf.phase_total_ns(PerfPhase::kChannelDecide), 60);
  // …but excluded from both the coverage sum and the shard busy time
  // (it already lives inside deliver_count).
  EXPECT_EQ(r.attributed_ns(), 100);
  EXPECT_EQ(r.shards[0].busy_ns(), 100);
}

TEST(PerfPlane, RingEvictsOldestButAggregatesNever) {
  obs::PerfOptions options;
  options.capacity = 4;
  PerfPlane perf(options);
  for (int i = 0; i < 10; ++i) {
    perf.add(PerfPhase::kCompute, 10);
    perf.end_round(i, 100);
  }
  EXPECT_EQ(perf.rounds(), 10);
  const auto recent = perf.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[static_cast<std::size_t>(i)].round, 6 + i);  // oldest first
  }
  // Run-wide sums cover all ten rounds, not just the retained window.
  EXPECT_EQ(perf.total_ns(), 1000);
  EXPECT_EQ(perf.phase_total_ns(PerfPhase::kCompute), 100);
  EXPECT_NEAR(perf.attribution_coverage(), 0.1, 1e-9);
}

TEST(PerfPlane, ImbalanceStatisticsAcrossRounds) {
  PerfPlane perf;
  perf.set_shards(2);
  // Round 0: perfectly balanced.
  perf.shard_add(0, PerfPhase::kCompute, 100);
  perf.shard_add(1, PerfPhase::kCompute, 100);
  perf.end_round(0, 200);
  // Round 1: shard 1 does triple the work.
  perf.shard_add(0, PerfPhase::kCompute, 100);
  perf.shard_add(1, PerfPhase::kCompute, 300);
  perf.end_round(1, 400);
  EXPECT_DOUBLE_EQ(perf.recent()[0].imbalance, 1.0);
  EXPECT_DOUBLE_EQ(perf.recent()[1].imbalance, 1.5);
  EXPECT_DOUBLE_EQ(perf.mean_imbalance(), 1.25);
  EXPECT_DOUBLE_EQ(perf.max_imbalance(), 1.5);
  ASSERT_EQ(perf.shard_totals().size(), 2u);
  EXPECT_EQ(perf.shard_totals()[0].busy_ns(), 200);
  EXPECT_EQ(perf.shard_totals()[1].busy_ns(), 400);
  EXPECT_EQ(perf.shard_totals()[1].straggler_rounds, 1);  // ties go low
}

TEST(PerfPlane, ExportJsonlShape) {
  PerfPlane perf;
  perf.set_shards(2);
  perf.add(PerfPhase::kCompute, 200);  // owner dispatch lap
  perf.shard_add(0, PerfPhase::kCompute, 120);
  perf.shard_add(1, PerfPhase::kCompute, 80);
  perf.add(PerfPhase::kFinalize, 10);
  perf.note_shard_work(0, 5, 9);
  perf.end_round(3, 250);
  std::ostringstream os;
  perf.export_jsonl(os, /*clamped_spans=*/7);
  const std::string out = os.str();
  // One round line, then the summary line.
  EXPECT_NE(out.find("\"type\":\"round\""), std::string::npos);
  EXPECT_NE(out.find("\"round\":3"), std::string::npos);
  EXPECT_NE(out.find("\"total_ns\":250"), std::string::npos);
  EXPECT_NE(out.find("\"compute\":200"), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(out.find("\"clamped_spans\":7"), std::string::npos);
  EXPECT_NE(out.find("\"shard_totals\""), std::string::npos);
  EXPECT_NE(out.find("\"straggler_rounds\""), std::string::npos);
  // Exactly two lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(PerfPlane, RegistryGaugesCarryThePerfPrefixAndAreExcludable) {
  obs::Registry reg;
  PerfPlane perf;
  perf.bind_registry(&reg);
  perf.set_alloc_source(+[]() -> std::uint64_t { return 42; });
  perf.end_round(0, 100);
  const obs::MetricId allocs = reg.find("perf.allocs");
  ASSERT_NE(allocs, obs::kInvalidMetric);
  EXPECT_EQ(reg.value(allocs), 42);
  ASSERT_NE(reg.find("perf.peak_rss_kb"), obs::kInvalidMetric);

  // Determinism comparisons drop exactly these gauges via the prefix
  // overload; everything else must survive the exclusion.
  reg.add(reg.counter("sim.messages"), 5);
  std::ostringstream all_os, excl_os;
  reg.write_json(all_os);
  reg.write_json(excl_os, "perf.");
  EXPECT_NE(all_os.str().find("perf.allocs"), std::string::npos);
  EXPECT_EQ(excl_os.str().find("perf."), std::string::npos);
  EXPECT_NE(excl_os.str().find("\"sim.messages\": 5"), std::string::npos);
}

TEST(PerfPlane, ResetClearsSamplesButKeepsWiring) {
  // One process driving many scenarios through the same plane (the dynamic
  // campaign mode) must be able to start each run's attribution clean
  // without re-binding anything.
  obs::Registry reg;
  PerfPlane perf;
  perf.bind_registry(&reg);
  perf.set_alloc_source(+[]() -> std::uint64_t { return 42; });
  perf.set_shards(2);
  perf.add(PerfPhase::kCompute, 350);
  perf.shard_add(0, PerfPhase::kCompute, 100);
  perf.shard_add(1, PerfPhase::kCompute, 200);
  perf.note_shard_work(1, 10, 70);
  perf.end_round(0, 1000);
  ASSERT_EQ(perf.rounds(), 1);
  ASSERT_EQ(reg.value(reg.find("perf.allocs")), 42);

  perf.reset();
  // Every sample is gone: ring, aggregates, shard totals, imbalance.
  EXPECT_EQ(perf.rounds(), 0);
  EXPECT_TRUE(perf.recent().empty());
  EXPECT_EQ(perf.total_ns(), 0);
  EXPECT_EQ(perf.phase_total_ns(PerfPhase::kCompute), 0);
  EXPECT_DOUBLE_EQ(perf.max_imbalance(), 0.0);
  for (const auto& tot : perf.shard_totals()) {
    EXPECT_EQ(tot.busy_ns(), 0);
    EXPECT_EQ(tot.nodes, 0);
    EXPECT_EQ(tot.straggler_rounds, 0);
  }
  // The perf.* gauges read as empty until the next end_round…
  EXPECT_EQ(reg.value(reg.find("perf.allocs")), 0);
  EXPECT_EQ(reg.value(reg.find("perf.peak_rss_kb")), 0);

  // …and the wiring (shards, registry, alloc source) survived: the next
  // scenario attributes from a clean slate.
  perf.add(PerfPhase::kCompute, 80);
  perf.shard_add(0, PerfPhase::kCompute, 80);
  perf.end_round(0, 100);
  EXPECT_EQ(perf.rounds(), 1);
  EXPECT_EQ(perf.shards(), 2);
  EXPECT_EQ(perf.phase_total_ns(PerfPhase::kCompute), 80);
  EXPECT_EQ(reg.value(reg.find("perf.allocs")), 42);
}

/// Two-word chatter, enough rounds to exercise every engine phase.
class ChatterProcess final : public sim::Process {
 public:
  explicit ChatterProcess(std::int64_t rounds) : rounds_(rounds) {}
  void on_round(sim::Context& ctx) override {
    ctx.broadcast({sim::Word{1}, static_cast<sim::Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

 private:
  std::int64_t rounds_;
};

TEST(PerfWiring, SyncNetworkAttributesItsRounds) {
  util::Rng rng(11);
  const auto udg = geom::uniform_udg_with_degree(120, 8.0, rng);
  obs::PlaneOptions options;
  options.perf = true;
  obs::Plane plane(options);
  sim::SyncNetwork net(udg, 3);
  net.set_observability(&plane);
  net.set_threads(4);
  net.set_parallel_grain(0);  // small n: force the pool, not the fallback
  net.set_message_loss(0.1);  // channel verdicts → channel_decide time
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(30); });
  net.run(40);

  const PerfPlane& perf = *plane.perf();
  EXPECT_EQ(perf.rounds(), net.metrics().rounds);
  EXPECT_EQ(perf.shards(), 4);
  // The engine tiles each round with its top-level phases; the attribution
  // must explain most of the measured wall time (the acceptance bar on the
  // big flood bench is 95% — on a tiny graph, clock granularity bites, so
  // assert a softer floor here).
  EXPECT_GT(perf.attribution_coverage(), 0.5);
  EXPECT_LE(perf.attribution_coverage(), 1.0 + 1e-9);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kCompute), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kDeliverCount), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kDeliverPlace), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kFinalize), 0);
  EXPECT_GE(perf.mean_imbalance(), 1.0);
  // Every shard saw work on a 120-node graph split four ways.
  for (const auto& totals : perf.shard_totals()) {
    EXPECT_GT(totals.nodes, 0);
  }
}

TEST(PerfWiring, AttachingThePerfPlaneDoesNotPerturbTheRun) {
  util::Rng rng(23);
  const auto udg = geom::uniform_udg_with_degree(80, 8.0, rng);
  auto run = [&](bool with_perf) {
    obs::PlaneOptions options;
    options.perf = with_perf;
    obs::Plane plane(options);
    sim::SyncNetwork net(udg, 9);
    net.set_observability(&plane);
    net.set_message_loss(0.2);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<ChatterProcess>(25); });
    net.run(30);
    return net.metrics();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(PerfWiring, LpSolverAttributesItsInnerIterations) {
  util::Rng rng(5);
  const graph::Graph g = graph::gnp(200, 0.05, rng);
  const auto demands =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), 2));
  algo::LpOptions opts;
  const algo::LpResult plain = algo::solve_fractional_kmds(g, demands, opts);

  PerfPlane perf;
  opts.perf = &perf;
  const algo::LpResult attributed = algo::solve_fractional_kmds(g, demands, opts);

  // Attaching the sink is observation only: identical solution.
  EXPECT_EQ(plain.primal.x, attributed.primal.x);
  EXPECT_EQ(plain.rounds, attributed.rounds);
  // t² inner iterations plus the final z-pass, each one perf "round".
  EXPECT_EQ(perf.rounds(),
            static_cast<std::int64_t>(opts.t) * opts.t + 1);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kLpXUpdate), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kLpDualColor), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kLpDegree), 0);
  EXPECT_GT(perf.phase_total_ns(PerfPhase::kLpZPass), 0);
  EXPECT_GT(perf.attribution_coverage(), 0.5);
}

}  // namespace
