#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

namespace {

using ftc::obs::Category;
using ftc::obs::category_bit;
using ftc::obs::NameId;
using ftc::obs::parse_category;
using ftc::obs::parse_severity;
using ftc::obs::Severity;
using ftc::obs::SpanTimer;
using ftc::obs::Trace;
using ftc::obs::TraceEvent;

TraceEvent make_event(std::int64_t round, Category cat = Category::kEngine,
                      Severity sev = Severity::kInfo, NameId name = 0) {
  TraceEvent e;
  e.round = round;
  e.category = cat;
  e.severity = sev;
  e.name = name;
  return e;
}

TEST(TraceNames, ParseRoundTrips) {
  Category c;
  EXPECT_TRUE(parse_category("repair", c));
  EXPECT_EQ(c, Category::kRepair);
  EXPECT_FALSE(parse_category("bogus", c));
  Severity s;
  EXPECT_TRUE(parse_severity("warn", s));
  EXPECT_EQ(s, Severity::kWarn);
  EXPECT_FALSE(parse_severity("loud", s));
}

TEST(TraceFilter, SeverityAndCategoryMask) {
  Trace::Options options;
  options.min_severity = Severity::kInfo;
  options.category_mask = category_bit(Category::kFault);
  Trace trace(options);
  trace.emit(make_event(1, Category::kFault, Severity::kDebug));  // too quiet
  trace.emit(make_event(2, Category::kEngine, Severity::kWarn));  // masked cat
  trace.emit(make_event(3, Category::kFault, Severity::kInfo));   // kept
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].round, 3);
  EXPECT_EQ(trace.dropped(), 0);  // filtered ≠ dropped (ring eviction)
}

TEST(TraceRing, EvictsOldestAndCountsDrops) {
  Trace::Options options;
  options.capacity = 4;
  Trace trace(options);
  for (int i = 0; i < 10; ++i) trace.emit(make_event(i));
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].round, 6 + i);  // oldest first
  }
}

TEST(TraceShards, MergeAppendsInAscendingShardOrder) {
  Trace trace;
  trace.set_shards(3);
  trace.shard_emit(2, make_event(102));
  trace.shard_emit(0, make_event(100));
  trace.shard_emit(1, make_event(101));
  trace.shard_emit(0, make_event(110));
  EXPECT_EQ(trace.size(), 0u);  // staged, not yet visible
  trace.merge_shards();
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].round, 100);
  EXPECT_EQ(events[1].round, 110);  // within-shard emission order kept
  EXPECT_EQ(events[2].round, 101);
  EXPECT_EQ(events[3].round, 102);
}

TEST(TraceExport, JsonlHasLogicalFieldsOnly) {
  Trace trace;
  const NameId name = trace.intern("crash");
  TraceEvent e = make_event(7, Category::kFault, Severity::kWarn, name);
  e.node = 3;
  e.a0 = 42;
  e.a1 = -1;
  trace.emit(e);
  std::ostringstream os;
  trace.export_jsonl(os);
  EXPECT_EQ(os.str(),
            "{\"round\":7,\"node\":3,\"cat\":\"fault\",\"sev\":\"warn\","
            "\"name\":\"crash\",\"a0\":42,\"a1\":-1}\n");
  // The wall clock must never leak into the deterministic stream.
  EXPECT_EQ(os.str().find("wall"), std::string::npos);
  EXPECT_EQ(os.str().find("dur"), std::string::npos);
  EXPECT_EQ(os.str().find("ts"), std::string::npos);
}

TEST(TraceExport, ChromeShape) {
  Trace trace;
  const NameId span_name = trace.intern("engine.execute");
  {
    SpanTimer span(&trace, Category::kEngine, Severity::kDebug, span_name, 5);
  }
  trace.emit(make_event(6, Category::kFault, Severity::kInfo,
                        trace.intern("crash")));
  std::ostringstream os;
  trace.export_chrome(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("\"name\":\"engine.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(TraceSpan, FilteredOrNullSpanIsNoop) {
  Trace::Options options;
  options.min_severity = Severity::kWarn;
  Trace trace(options);
  {
    SpanTimer null_span(nullptr, Category::kEngine, Severity::kError, 0, 1);
    SpanTimer filtered(&trace, Category::kEngine, Severity::kDebug, 0, 1);
  }
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceSpan, RecordsArgsAndPositiveDuration) {
  Trace trace;
  const NameId name = trace.intern("phase");
  {
    SpanTimer span(&trace, Category::kEngine, Severity::kInfo, name, 9, 4);
    span.set_args(11, 22);
  }
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].round, 9);
  EXPECT_EQ(events[0].node, 4);
  EXPECT_EQ(events[0].a0, 11);
  EXPECT_EQ(events[0].a1, 22);
  EXPECT_GT(events[0].dur_ns, 0);
}

TEST(TraceSpan, MovedFromSpanIsInert) {
  Trace trace;
  const NameId name = trace.intern("phase");
  {
    SpanTimer outer(&trace, Category::kEngine, Severity::kInfo, name, 1);
    {
      SpanTimer inner(std::move(outer));
    }  // the moved-to span emits here
    // The moved-from span must not emit a second event (or touch the
    // finished event) when it is destroyed.
  }
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TraceSpan, ClampCounterIsResettableBetweenRuns) {
  // Scenario-campaign discipline: between runs the owner may zero the clamp
  // counter (paired with PerfPlane::reset()) so each run's perf summary
  // reports its own clamp count, while retained events are untouched.
  Trace trace;
  TraceEvent zero = make_event(4);
  zero.dur_ns = 0;
  trace.finish_span(zero, -1);
  ASSERT_EQ(trace.clamped_spans(), 1);
  trace.reset_clamped_spans();
  EXPECT_EQ(trace.clamped_spans(), 0);
  EXPECT_EQ(trace.size(), 1u);  // the event itself survives
  TraceEvent again = make_event(5);
  again.dur_ns = -3;
  trace.finish_span(again, -1);
  EXPECT_EQ(trace.clamped_spans(), 1);  // fresh per-run accounting
}

TEST(TraceSpan, NonPositiveDurationClampsAndCounts) {
  Trace trace;
  trace.set_shards(2);
  TraceEvent zero = make_event(4);
  zero.dur_ns = 0;  // clock could not resolve the interval
  trace.finish_span(zero, -1);
  TraceEvent negative = make_event(5);
  negative.dur_ns = -7;  // e.g. a clock-domain hiccup
  trace.finish_span(negative, 1);
  TraceEvent fine = make_event(6);
  fine.dur_ns = 50;
  trace.finish_span(fine, -1);
  trace.merge_shards();
  // Clamped spans still render (dur 1 ns), and only the clamped ones count.
  EXPECT_EQ(trace.clamped_spans(), 2);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  for (const auto& e : events) {
    EXPECT_GT(e.dur_ns, 0);
  }
}

TEST(TraceNames, InternIsIdempotent) {
  Trace trace;
  const NameId a = trace.intern("x");
  EXPECT_EQ(trace.intern("x"), a);
  EXPECT_EQ(trace.name(a), "x");
  EXPECT_NE(trace.intern("y"), a);
  EXPECT_EQ(trace.name(0), "?");  // reserved un-interned name
}

}  // namespace
