#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace {

using ftc::obs::HistogramSnapshot;
using ftc::obs::kInvalidMetric;
using ftc::obs::MetricId;
using ftc::obs::MetricKind;
using ftc::obs::pow2_bounds;
using ftc::obs::Registry;

TEST(MetricsRegistry, RegistrationIsIdempotentAndTyped) {
  Registry reg;
  const MetricId a = reg.counter("sim.messages");
  EXPECT_EQ(reg.counter("sim.messages"), a);
  EXPECT_EQ(reg.find("sim.messages"), a);
  EXPECT_EQ(reg.kind(a), MetricKind::kCounter);
  EXPECT_EQ(reg.find("nope"), kInvalidMetric);
  EXPECT_THROW(reg.gauge("sim.messages"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("sim.messages", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, CountersAccumulateAndGaugesOverwrite) {
  Registry reg;
  const MetricId c = reg.counter("c");
  const MetricId g = reg.gauge("g");
  reg.add(c, 3);
  reg.add(c, 4);
  reg.set(g, 10);
  reg.set(g, 7);
  EXPECT_EQ(reg.value(c), 7);
  EXPECT_EQ(reg.value(g), 7);
}

TEST(MetricsRegistry, BucketOfUsesHalfOpenUpperEdges) {
  // Buckets over bounds {1, 2, 4}: [-inf,1) [1,2) [2,4) [4,inf).
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  EXPECT_EQ(Registry::bucket_of(bounds, 0.0), 0u);   // below first bound
  EXPECT_EQ(Registry::bucket_of(bounds, 0.99), 0u);
  EXPECT_EQ(Registry::bucket_of(bounds, 1.0), 1u);   // exact edge → upper
  EXPECT_EQ(Registry::bucket_of(bounds, 1.5), 1u);
  EXPECT_EQ(Registry::bucket_of(bounds, 2.0), 2u);   // exact edge → upper
  EXPECT_EQ(Registry::bucket_of(bounds, 3.999), 2u);
  EXPECT_EQ(Registry::bucket_of(bounds, 4.0), 3u);   // overflow bucket
  EXPECT_EQ(Registry::bucket_of(bounds, 1e18), 3u);
}

TEST(MetricsRegistry, HistogramRecordsIntoExpectedBuckets) {
  Registry reg;
  const MetricId h = reg.histogram("h", {1.0, 2.0, 4.0});
  reg.record(h, 0.5);   // bucket 0
  reg.record(h, 1.0);   // bucket 1 (edge)
  reg.record(h, 3.0);   // bucket 2
  reg.record(h, 4.0);   // overflow
  reg.record(h, 100.0); // overflow
  const HistogramSnapshot snap = reg.histogram_snapshot(h);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 2);
  EXPECT_EQ(snap.total(), 5);
}

TEST(MetricsRegistry, Pow2BoundsShape) {
  const auto bounds = pow2_bounds(0, 3);  // 1, 2, 4, 8
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

/// Shard merging must be associative: any partition of the same emissions
/// across shards — including all-in-one-shard — folds to the same totals.
TEST(MetricsRegistry, ShardMergeIsPartitionInvariant) {
  auto run = [](int shards, const std::vector<int>& shard_of_emission) {
    Registry reg;
    const MetricId c = reg.counter("c");
    const MetricId h = reg.histogram("h", {2.0, 8.0});
    reg.set_shards(shards);
    for (std::size_t i = 0; i < shard_of_emission.size(); ++i) {
      const int s = shard_of_emission[i];
      reg.shard_add(s, c, static_cast<std::int64_t>(i) + 1);
      reg.shard_record(s, h, static_cast<double>(i));
    }
    reg.merge_shards();
    std::ostringstream os;
    reg.write_json(os);
    return os.str();
  };

  const std::string one = run(1, {0, 0, 0, 0, 0, 0});
  const std::string two = run(2, {0, 1, 0, 1, 1, 0});
  const std::string four = run(4, {3, 2, 1, 0, 3, 1});
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(MetricsRegistry, MergeClearsStagingForReuse) {
  Registry reg;
  const MetricId c = reg.counter("c");
  reg.set_shards(2);
  reg.shard_add(0, c, 5);
  reg.shard_add(1, c, 6);
  reg.merge_shards();
  EXPECT_EQ(reg.value(c), 11);
  reg.merge_shards();  // nothing staged: no double counting
  EXPECT_EQ(reg.value(c), 11);
  reg.shard_add(1, c, 1);
  reg.merge_shards();
  EXPECT_EQ(reg.value(c), 12);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsDefinitions) {
  Registry reg;
  const MetricId c = reg.counter("c");
  const MetricId g = reg.gauge("g");
  const MetricId h = reg.histogram("h", {1.0});
  reg.add(c, 9);
  reg.set(g, 9);
  reg.record(h, 0.5);
  reg.set_shards(2);
  reg.shard_add(0, c, 100);  // staged but never merged
  reg.reset();
  EXPECT_EQ(reg.value(c), 0);
  EXPECT_EQ(reg.value(g), 0);
  EXPECT_EQ(reg.histogram_snapshot(h).total(), 0);
  reg.merge_shards();  // staging was cleared by reset
  EXPECT_EQ(reg.value(c), 0);
  EXPECT_EQ(reg.find("c"), c);  // definitions survive
}

TEST(MetricsRegistry, WriteJsonRendersEmptyHistograms) {
  // A histogram nothing ever recorded into still exports its full shape:
  // ftc-trace summarize and diff-based determinism checks both depend on
  // the all-zero counts row being present rather than omitted.
  Registry reg;
  reg.histogram("empty.hist", {1.0, 4.0});
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find(
                "\"empty.hist\": {\"bounds\": [1, 4], \"counts\": [0, 0, 0]}"),
            std::string::npos);
}

TEST(MetricsRegistry, WriteJsonExcludePrefixDropsOnlyMatchingMetrics) {
  // Registry::write_json(os, "perf.") is how determinism comparisons drop
  // the wall-clock perf gauges while keeping everything else bit-exact.
  Registry reg;
  reg.set(reg.gauge("perf.allocs"), 123);
  reg.set(reg.gauge("perf.peak_rss_kb"), 456);
  reg.add(reg.counter("sim.messages"), 7);
  reg.record(reg.histogram("perf.h", {1.0}), 0.5);
  std::ostringstream all_os, excl_os;
  reg.write_json(all_os);
  reg.write_json(excl_os, "perf.");
  EXPECT_NE(all_os.str().find("perf.allocs"), std::string::npos);
  EXPECT_EQ(excl_os.str().find("perf."), std::string::npos);
  EXPECT_NE(excl_os.str().find("\"sim.messages\": 7"), std::string::npos);
  // An empty prefix excludes nothing.
  std::ostringstream empty_os;
  reg.write_json(empty_os, "");
  EXPECT_EQ(empty_os.str(), all_os.str());
}

TEST(MetricsRegistry, WriteJsonShape) {
  Registry reg;
  reg.add(reg.counter("a.count"), 3);
  reg.record(reg.histogram("b.hist", {1.0}), 2.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"b.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

}  // namespace
