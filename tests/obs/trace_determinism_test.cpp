// The observability plane must not weaken the round engine's determinism
// contract: with a plane attached, a seeded churn run produces a JSONL
// trace and a metric registry that are BITWISE identical at every thread
// count (DESIGN.md §7). Suite names matter: scripts/check.sh runs
// TraceDeterminism under TSan alongside the engine determinism suites.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "algo/baseline/greedy.h"
#include "algo/extensions/soak.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "obs/plane.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;

struct SoakCapture {
  std::string jsonl;
  std::string metrics_json;
  algo::SoakReport report;
  std::int64_t perf_rounds = 0;  ///< rounds the perf plane attributed
};

/// One seeded churn soak with an attached plane at the given thread count.
/// The registry export always drops the "perf."-prefixed gauges — that is
/// the documented exclusion determinism comparisons use (obs/perf.h), and
/// with perf off it excludes nothing.
SoakCapture run_traced_soak(int threads, bool with_perf = false) {
  util::Rng rng(12345);
  const auto udg = geom::uniform_udg_with_degree(150, 10.0, rng);
  const graph::Graph& g = udg.graph;
  const auto demands =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), 2));
  const auto base = algo::greedy_kmds(g, demands).set;
  const auto plan = sim::FaultPlan::churn(0.002, 20, 80, 0, 200);

  obs::PlaneOptions plane_options;
  plane_options.perf = with_perf;
  obs::Plane plane(plane_options);
  algo::SoakOptions opts;
  opts.rounds = 240;
  opts.message_loss = 0.05;
  opts.threads = threads;
  opts.plane = &plane;

  SoakCapture capture;
  capture.report = algo::run_soak(g, &udg, demands, base, plan, opts);
  std::ostringstream trace_os;
  plane.trace().export_jsonl(trace_os);
  capture.jsonl = trace_os.str();
  std::ostringstream metrics_os;
  plane.metrics().write_json(metrics_os, "perf.");
  capture.metrics_json = metrics_os.str();
  if (plane.perf() != nullptr) capture.perf_rounds = plane.perf()->rounds();
  return capture;
}

TEST(TraceDeterminism, JsonlIdenticalAcrossThreadCounts) {
  const SoakCapture seq = run_traced_soak(1);
  ASSERT_FALSE(seq.jsonl.empty());
  // The run must actually exercise the interesting paths, or equality
  // proves nothing.
  EXPECT_GT(seq.report.crashes, 0);
  EXPECT_GT(seq.report.promotions, 0);

  for (int threads : {3, 8}) {
    const SoakCapture par = run_traced_soak(threads);
    EXPECT_EQ(seq.jsonl, par.jsonl) << "JSONL diverged at " << threads
                                    << " threads";
    EXPECT_EQ(seq.metrics_json, par.metrics_json)
        << "registry diverged at " << threads << " threads";
    EXPECT_EQ(seq.report.promotions, par.report.promotions);
    EXPECT_EQ(seq.report.violation_rounds, par.report.violation_rounds);
  }
}

TEST(TraceDeterminism, PerfPlaneKeepsBitwiseInvariance) {
  // The perf-attribution plane times the run with wall clocks, but its
  // staging discipline (shard-owned slots, ascending-order fold at the
  // barrier) confines every timestamp to the perf side channel: with perf
  // ON, the trace and the registry (minus the "perf." gauges) must stay
  // bitwise identical to the perf-OFF single-thread run at every width.
  const SoakCapture base = run_traced_soak(1, /*with_perf=*/false);
  ASSERT_FALSE(base.jsonl.empty());

  for (int threads : {1, 2, 4, 8}) {
    const SoakCapture par = run_traced_soak(threads, /*with_perf=*/true);
    ASSERT_GT(par.perf_rounds, 0) << "perf plane never engaged";
    EXPECT_EQ(base.jsonl, par.jsonl)
        << "JSONL diverged with perf on at " << threads << " threads";
    EXPECT_EQ(base.metrics_json, par.metrics_json)
        << "registry diverged with perf on at " << threads << " threads";
    EXPECT_EQ(base.report.promotions, par.report.promotions);
    EXPECT_EQ(base.report.violation_rounds, par.report.violation_rounds);
    // The exclusion did its job: no wall-clock gauge leaked into the
    // compared document.
    EXPECT_EQ(par.metrics_json.find("perf."), std::string::npos);
  }
}

/// Minimal process for the wiring checks: broadcast two words per round.
class ChatterProcess final : public sim::Process {
 public:
  explicit ChatterProcess(std::int64_t rounds) : rounds_(rounds) {}
  void on_round(sim::Context& ctx) override {
    ctx.broadcast({sim::Word{1}, static_cast<sim::Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

 private:
  std::int64_t rounds_;
};

TEST(ObsWiring, RegistryAgreesWithMetricsStruct) {
  util::Rng rng(7);
  const auto udg = geom::uniform_udg_with_degree(80, 8.0, rng);
  obs::Plane plane;
  sim::SyncNetwork net(udg, 99);
  net.set_observability(&plane);
  net.set_threads(4);
  net.set_parallel_grain(0);  // small n: force the pool, not the fallback
  net.set_message_loss(0.1);
  net.schedule_crash(3, 5);
  net.schedule_crash(11, 9);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(40); });
  net.run(50);

  const obs::Builtin& b = plane.builtin();
  const obs::Registry& reg = plane.metrics();
  // The registry is fed the same merged deltas, at the same barrier, as the
  // Metrics struct — they cannot drift apart.
  EXPECT_EQ(reg.value(b.rounds), net.metrics().rounds);
  EXPECT_EQ(reg.value(b.messages), net.metrics().messages_sent);
  EXPECT_EQ(reg.value(b.words), net.metrics().words_sent);
  EXPECT_EQ(reg.value(b.max_message_words), net.metrics().max_message_words);
  EXPECT_EQ(reg.value(b.messages_lost), net.messages_lost());
  EXPECT_EQ(reg.value(b.crashes), 2);
  EXPECT_GT(reg.value(b.messages), 0);
  EXPECT_GT(reg.value(b.messages_lost), 0);
  // One messages_per_round sample per executed round.
  EXPECT_EQ(reg.histogram_snapshot(b.messages_per_round).total(),
            net.metrics().rounds);
  // Gauges reflect the final round.
  EXPECT_EQ(reg.value(b.live_nodes),
            static_cast<std::int64_t>(udg.n()) - 2);
}

TEST(ObsWiring, MetricsStructResetZeroes) {
  sim::Metrics m;
  m.rounds = 5;
  m.messages_sent = 10;
  m.words_sent = 20;
  m.max_message_words = 3;
  m.reset();
  EXPECT_EQ(m, sim::Metrics{});
}

TEST(ObsWiring, AttachingThePlaneDoesNotPerturbTheRun) {
  util::Rng rng(21);
  const auto udg = geom::uniform_udg_with_degree(60, 8.0, rng);

  auto run = [&](obs::Plane* plane) {
    sim::SyncNetwork net(udg, 5);
    if (plane != nullptr) net.set_observability(plane);
    net.set_message_loss(0.2);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<ChatterProcess>(30); });
    net.run(40);
    return net.metrics();
  };

  obs::Plane plane;
  const sim::Metrics with_plane = run(&plane);
  const sim::Metrics without_plane = run(nullptr);
  EXPECT_EQ(with_plane, without_plane);
}

}  // namespace
