// Property-based invariant sweeps: for a grid of (graph family, size,
// density, k, t, seed) configurations, every library-level invariant the
// paper's analysis relies on must hold simultaneously. These tests are the
// broadest net in the suite — each instantiation checks a dozen properties
// on a fresh random instance.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "algo/baseline/greedy.h"
#include "algo/baseline/lrg.h"
#include "algo/baseline/mis_clustering.h"
#include "algo/exact/exact.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "domination/bounds.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

// ---------- General-graph invariants across the whole stack ----------

struct GeneralCase {
  int family;     // 0=gnp sparse, 1=gnp dense, 2=BA, 3=tree, 4=caveman
  std::int32_t k;
  int t;
  std::uint64_t seed;
};

class GeneralGraphInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t, int>> {
 protected:
  static Graph make(int family, util::Rng& rng) {
    switch (family) {
      case 0: return graph::gnp(90, 0.05, rng);
      case 1: return graph::gnp(60, 0.2, rng);
      case 2: return graph::barabasi_albert(80, 3, rng);
      case 3: return graph::random_tree(80, rng);
      default: return graph::caveman(12, 6);
    }
  }
};

TEST_P(GeneralGraphInvariants, FullStackInvariants) {
  const auto [family, k, t] = GetParam();
  const std::uint64_t seed =
      1000 * static_cast<std::uint64_t>(family) + 10 * k + t;
  util::Rng rng(seed);
  const Graph g = make(family, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));

  // (1) LP stage invariants.
  PipelineOptions opts;
  opts.t = t;
  opts.seed = seed;
  const auto pipe = run_kmds_pipeline(g, d, opts);
  EXPECT_TRUE(domination::primal_feasible(g, pipe.lp.primal, d, 1e-6));
  EXPECT_LE(pipe.lp.max_lemma41_ratio, 1.0 + 1e-9);
  EXPECT_LE(domination::max_dual_lhs(g, pipe.lp.dual),
            pipe.lp.kappa + 1e-6);

  // (2) Rounded set is feasible.
  EXPECT_TRUE(domination::is_k_dominating(g, pipe.set(), d));

  // (3) Dual bound is a genuine lower bound: never exceeds the size of any
  //     feasible solution we can construct.
  const auto greedy = greedy_kmds(g, d);
  EXPECT_TRUE(greedy.fully_satisfied);
  EXPECT_LE(pipe.lp.dual_bound(d),
            static_cast<double>(greedy.set.size()) + 1e-6);
  EXPECT_LE(pipe.lp.dual_bound(d), pipe.lp.primal.objective() + 1e-6);

  // (4) Greedy and LRG both feasible; LP-rounding never beats the dual
  //     bound from below.
  const auto lrg = lrg_kmds(g, d, seed);
  EXPECT_TRUE(lrg.fully_satisfied);
  EXPECT_TRUE(domination::is_k_dominating(g, lrg.set, d));
  EXPECT_GE(static_cast<double>(pipe.set().size()),
            pipe.lp.dual_bound(d) - 1e-6);

  // (5) Fractional objective is itself >= packing bound (it's a relaxation
  //     upper-bounded by OPT from below... i.e. OPT_f >= dual bound, and
  //     primal >= OPT_f >= any valid fractional lower bound).
  EXPECT_GE(pipe.lp.primal.objective() + 1e-6,
            pipe.lp.dual_bound(d));

  // (6) Set sizes are sane: no algorithm returns more than n nodes.
  EXPECT_LE(pipe.set().size(), static_cast<std::size_t>(g.n()));
  EXPECT_LE(greedy.set.size(), static_cast<std::size_t>(g.n()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralGraphInvariants,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<std::int32_t>(1, 2, 4),
                       ::testing::Values(1, 3)));

// ---------- Exactness cross-validation on small instances ----------

class ExactCrossValidation
    : public ::testing::TestWithParam<std::tuple<std::int32_t, std::uint64_t>> {
};

TEST_P(ExactCrossValidation, EverythingBracketsOptimum) {
  const auto [k, seed] = GetParam();
  util::Rng rng(seed);
  const Graph g = graph::gnp(15, 0.25, rng);
  const auto d = clamp_demands(g, uniform_demands(15, k));

  const auto exact = exact_kmds(g, d);
  ASSERT_TRUE(exact.optimal);
  const auto opt = static_cast<double>(exact.set.size());

  // Lower bounds never exceed OPT.
  EXPECT_LE(static_cast<double>(domination::packing_lower_bound(g, d)), opt);
  EXPECT_LE(static_cast<double>(domination::max_demand_lower_bound(d)), opt);
  EXPECT_LE(static_cast<double>(domination::disjoint_packing_lower_bound(g, d)),
            opt);

  // Upper bounds (feasible algorithms) never beat OPT.
  const auto greedy = greedy_kmds(g, d);
  EXPECT_GE(static_cast<double>(greedy.set.size()), opt);
  PipelineOptions opts;
  opts.seed = seed;
  const auto pipe = run_kmds_pipeline(g, d, opts);
  EXPECT_GE(static_cast<double>(pipe.set().size()), opt);
  const auto lrg = lrg_kmds(g, d, seed);
  EXPECT_GE(static_cast<double>(lrg.set.size()), opt);

  // The LP relaxation sits between the dual bound and OPT... precisely:
  // dual_bound <= OPT_f <= OPT <= primal objective is NOT guaranteed
  // (primal is approximate), but dual_bound <= OPT always.
  EXPECT_LE(pipe.lp.dual_bound(d), opt + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactCrossValidation,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55)));

// ---------- UDG invariants ----------

class UdgInvariants
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(UdgInvariants, AlgorithmThreeInvariants) {
  const auto [k, deployment] = GetParam();
  const std::uint64_t seed = 7000 + 10 * static_cast<std::uint64_t>(k) +
                             static_cast<std::uint64_t>(deployment);
  util::Rng rng(seed);
  geom::UnitDiskGraph udg;
  switch (deployment) {
    case 0: udg = geom::uniform_udg_with_degree(300, 10.0, rng); break;
    case 1: udg = geom::uniform_udg_with_degree(300, 25.0, rng); break;
    default:
      udg = geom::build_udg(geom::clustered_points(250, 6, 9.0, 0.7, rng),
                            1.0);
      break;
  }

  UdgOptions opts;
  opts.k = k;
  const auto result = solve_udg_kmds(udg, opts, seed);

  // Lemma 5.1: Part I leaders dominate.
  EXPECT_TRUE(domination::is_k_dominating(
      udg.graph, result.part1_leaders, 1,
      domination::Mode::kOpenForNonMembers));

  // Theorem 5.7 feasibility: final leaders k-dominate all non-members.
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_TRUE(domination::is_k_dominating(
      udg.graph, result.leaders, k, domination::Mode::kOpenForNonMembers));

  // Part I leader set is a subset of the final set.
  for (std::size_t i = 0, j = 0; i < result.part1_leaders.size(); ++i) {
    while (j < result.leaders.size() &&
           result.leaders[j] < result.part1_leaders[i]) {
      ++j;
    }
    ASSERT_LT(j, result.leaders.size());
    EXPECT_EQ(result.leaders[j], result.part1_leaders[i]);
  }

  // Round count matches the formula.
  EXPECT_EQ(result.part1_rounds, udg_part1_rounds(udg.n()));

  // Active counts decrease and end at the Part I leader count.
  for (std::size_t i = 1; i < result.active_after_round.size(); ++i) {
    EXPECT_LE(result.active_after_round[i],
              result.active_after_round[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UdgInvariants,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3, 5),
                       ::testing::Range(0, 3)));

// ---------- Cross-algorithm consistency on identical inputs ----------

TEST(CrossAlgorithm, AllProduceFeasibleSetsOnSameInstance) {
  util::Rng rng(4242);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(250, 14.0, rng);
  const Graph& g = udg.graph;
  const std::int32_t k = 2;
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));

  PipelineOptions popts;
  popts.seed = 1;
  const auto pipe = run_kmds_pipeline(g, d, popts);
  const auto greedy = greedy_kmds(g, d);
  const auto lrg = lrg_kmds(g, d, 1);
  UdgOptions uopts;
  uopts.k = k;
  const auto udg_result = solve_udg_kmds(udg, uopts, 1);
  const auto mis = mis_kfold(g, k);

  EXPECT_TRUE(domination::is_k_dominating(g, pipe.set(), d));
  EXPECT_TRUE(domination::is_k_dominating(g, greedy.set, d));
  EXPECT_TRUE(domination::is_k_dominating(g, lrg.set, d));
  EXPECT_TRUE(domination::is_k_dominating(
      g, udg_result.leaders, k, domination::Mode::kOpenForNonMembers));
  EXPECT_TRUE(domination::is_k_dominating(
      g, mis.set, k, domination::Mode::kOpenForNonMembers));

  // Greedy is the strongest heuristic here; sanity-order the sizes loosely:
  // nothing should be more than ~20x greedy on this benign instance.
  for (std::size_t size : {pipe.set().size(), lrg.set.size(),
                           udg_result.leaders.size(), mis.set.size()}) {
    EXPECT_LE(size, greedy.set.size() * 20);
  }
}

}  // namespace
}  // namespace ftc::algo
