// IncrementalMaintainer unit tests on hand-built topologies: every clause
// of the contract (coverage restoration, drops, demotion, locality,
// bounded promotion, determinism) plus the dyn.* metric publication. The
// fuzzed DynamicOracle (testing/dynamic.h) covers the same contract at
// scale; these pin exact small-case behavior.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "algo/extensions/maintainer.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/mutation.h"

namespace ftc::algo {
namespace {

using graph::NodeId;
using sim::DynamicWorld;
using sim::Mutation;
using sim::MutationKind;

std::vector<sim::AppliedMutation> apply_all(DynamicWorld& world,
                                            const std::vector<Mutation>& ms) {
  std::vector<sim::AppliedMutation> batch;
  for (const Mutation& m : ms) batch.push_back(world.apply(m));
  return batch;
}

TEST(IncrementalMaintainer, LeaveDropsAndRepromotesLocally) {
  // Path 0-1-2, k=1, the center covers everyone. When it departs, both
  // stranded endpoints must self-promote (they are isolated afterwards).
  const graph::Graph g = graph::path(3);
  DynamicWorld world(g);
  const std::vector<NodeId> initial{1};
  IncrementalMaintainer maintainer(g.n(), initial, {.k = 1});

  Mutation leave;
  leave.kind = MutationKind::kLeave;
  leave.node = 1;
  const auto batch = apply_all(world, {leave});
  const MaintainResult r =
      maintainer.apply_batch(world.graph(), world.active_flags(), batch);

  EXPECT_EQ(r.dropped, 1);
  EXPECT_EQ(r.promoted, 2);
  EXPECT_EQ(r.demoted, 0);
  EXPECT_TRUE(r.fully_satisfied);
  EXPECT_EQ(maintainer.member_set(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(r.changed, (std::vector<NodeId>{0, 1, 2}));
}

TEST(IncrementalMaintainer, JoinTriggersDemotionOfRedundantMember) {
  // Complete(3) with two members; a join anchored at node 0 densifies the
  // neighborhood so one member becomes redundant and is released.
  const graph::Graph g = graph::complete(3);
  DynamicWorld world(g);
  const std::vector<NodeId> initial{0, 1};
  IncrementalMaintainer maintainer(g.n(), initial, {.k = 1});

  Mutation join;
  join.kind = MutationKind::kJoin;
  join.peer = 0;
  const auto batch = apply_all(world, {join});
  const MaintainResult r =
      maintainer.apply_batch(world.graph(), world.active_flags(), batch);

  EXPECT_EQ(r.promoted, 0);
  EXPECT_EQ(r.demoted, 1);
  EXPECT_EQ(maintainer.member_set(), (std::vector<NodeId>{1}));
  // Everyone is still covered.
  for (NodeId v = 0; v < world.n(); ++v) {
    bool covered = maintainer.is_member(v);
    for (NodeId w : world.graph().neighbors(v)) {
      covered = covered || maintainer.is_member(w);
    }
    EXPECT_TRUE(covered) << "node " << v;
  }
}

TEST(IncrementalMaintainer, DemotionRespectsHigherK) {
  // Complete(4), k=2, three members: still over-provisioned by one, and
  // only one may go — releasing two would break k=2 somewhere.
  const graph::Graph g = graph::complete(4);
  DynamicWorld world(g);
  const std::vector<NodeId> initial{0, 1, 2};
  IncrementalMaintainer maintainer(g.n(), initial, {.k = 2});

  Mutation flip;  // toggle {0,3} off and back on: a do-nothing batch shape
  flip.kind = MutationKind::kFlip;
  flip.node = 0;
  flip.peer = 3;
  auto batch = apply_all(world, {flip});
  batch = apply_all(world, {flip});  // restore the edge; seeds still {0,3}
  const MaintainResult r =
      maintainer.apply_batch(world.graph(), world.active_flags(), batch);
  EXPECT_EQ(r.promoted, 0);
  EXPECT_EQ(r.demoted, 1);
  EXPECT_EQ(maintainer.members(), 2);
  EXPECT_TRUE(domination::is_k_dominating(world.snapshot(),
                                          maintainer.member_set(), 2));
}

TEST(IncrementalMaintainer, MutationsOutsideComponentLeaveItUntouched) {
  // Two disjoint paths; churn in the left one must never touch the right
  // one's membership (the locality contract, exact version).
  const graph::Graph g =
      graph::Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  DynamicWorld world(g);
  const std::vector<NodeId> initial{1, 4};
  IncrementalMaintainer maintainer(g.n(), initial, {.k = 1});

  Mutation leave;
  leave.kind = MutationKind::kLeave;
  leave.node = 1;
  const auto batch = apply_all(world, {leave});
  const MaintainResult r =
      maintainer.apply_batch(world.graph(), world.active_flags(), batch);
  for (const NodeId v : r.changed) EXPECT_LT(v, 3) << "locality breached";
  EXPECT_TRUE(maintainer.is_member(4));
  EXPECT_FALSE(maintainer.is_member(1));
}

TEST(IncrementalMaintainer, NoPromotionModeReportsDeficiency) {
  const graph::Graph g = graph::path(3);
  DynamicWorld world(g);
  const std::vector<NodeId> initial{1};
  IncrementalMaintainer maintainer(g.n(), initial,
                                   {.k = 1, .promote = false});
  Mutation leave;
  leave.kind = MutationKind::kLeave;
  leave.node = 1;
  const auto batch = apply_all(world, {leave});
  const MaintainResult r =
      maintainer.apply_batch(world.graph(), world.active_flags(), batch);
  EXPECT_EQ(r.promoted, 0);
  EXPECT_FALSE(r.fully_satisfied);
  EXPECT_EQ(maintainer.members(), 0);
}

TEST(IncrementalMaintainer, IdenticalBatchesAreDeterministic) {
  const graph::Graph g = graph::cycle(12);
  auto run = [&] {
    DynamicWorld world(g);
    const std::vector<NodeId> initial{0, 3, 6, 9};
    IncrementalMaintainer maintainer(g.n(), initial, {.k = 1});
    std::vector<std::vector<NodeId>> changes;
    for (const NodeId victim : {3, 6, 0}) {
      Mutation leave;
      leave.kind = MutationKind::kLeave;
      leave.node = victim;
      const auto batch = apply_all(world, {leave});
      changes.push_back(
          maintainer
              .apply_batch(world.graph(), world.active_flags(), batch)
              .changed);
    }
    changes.push_back(maintainer.member_set());
    return changes;
  };
  EXPECT_EQ(run(), run());
}

TEST(IncrementalMaintainer, PublishesDynMetrics) {
  obs::Plane plane;
  const graph::Graph g = graph::path(3);
  DynamicWorld world(g);
  const std::vector<NodeId> initial{1};
  IncrementalMaintainer maintainer(g.n(), initial, {.k = 1});
  maintainer.bind_plane(&plane);

  Mutation leave;
  leave.kind = MutationKind::kLeave;
  leave.node = 1;
  const auto batch = apply_all(world, {leave});
  (void)maintainer.apply_batch(world.graph(), world.active_flags(), batch);

  auto& reg = plane.metrics();
  EXPECT_EQ(reg.value(reg.counter("dyn.batches")), 1);
  EXPECT_EQ(reg.value(reg.counter("dyn.mutations")), 1);
  EXPECT_EQ(reg.value(reg.counter("dyn.promotions")), 2);
  EXPECT_EQ(reg.value(reg.counter("dyn.dropped")), 1);
  EXPECT_EQ(reg.value(reg.gauge("dyn.members")), 2);
  EXPECT_EQ(maintainer.batches(), 1);
  EXPECT_EQ(maintainer.total_promoted(), 2);
}

}  // namespace
}  // namespace ftc::algo
