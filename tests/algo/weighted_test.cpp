#include "algo/weighted/weighted.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/baseline/greedy.h"
#include "algo/exact/exact.h"
#include "algo/lp/lp_kmds.h"
#include "domination/bounds.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Weights, Constructors) {
  const auto u = uniform_weights(4);
  EXPECT_EQ(u, (NodeWeights{1, 1, 1, 1}));
  util::Rng rng(1);
  const auto r = random_weights(100, 0.5, 2.0, rng);
  EXPECT_EQ(r.size(), 100u);
  for (double w : r) {
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 2.0);
  }
}

TEST(Weights, SetWeight) {
  const NodeWeights w{1.0, 2.0, 4.0};
  const std::vector<NodeId> set{0, 2};
  EXPECT_DOUBLE_EQ(set_weight(set, w), 5.0);
  EXPECT_DOUBLE_EQ(set_weight({}, w), 0.0);
}

TEST(WeightedGreedy, UnweightedMatchesPlainGreedy) {
  util::Rng rng(2);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(50, 2));
  const auto plain = greedy_kmds(g, d);
  const auto weighted = weighted_greedy_kmds(g, d, uniform_weights(50));
  // Same tie-breaking and same criterion (weight/span = 1/span), so the
  // result sets should coincide.
  EXPECT_EQ(weighted.set, plain.set);
  EXPECT_DOUBLE_EQ(weighted.weight,
                   static_cast<double>(plain.set.size()));
}

TEST(WeightedGreedy, AvoidsExpensiveCenter) {
  // Star where the hub is prohibitively expensive: covering the leaves via
  // the hub costs 1000; covering each leaf by itself costs 1 each.
  const Graph g = graph::star(6);
  NodeWeights w{1000, 1, 1, 1, 1, 1};
  const auto result =
      weighted_greedy_kmds(g, uniform_demands(6, 1), w);
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set, (std::vector<NodeId>{1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(result.weight, 5.0);
}

TEST(WeightedGreedy, PrefersCheapHub) {
  const Graph g = graph::star(6);
  NodeWeights w{1, 10, 10, 10, 10, 10};
  const auto result =
      weighted_greedy_kmds(g, uniform_demands(6, 1), w);
  EXPECT_EQ(result.set, (std::vector<NodeId>{0}));
}

TEST(WeightedGreedy, AlwaysFeasibleOnFeasibleInstances) {
  util::Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::gnp(60, 0.1, rng);
    const auto d = clamp_demands(g, uniform_demands(60, 3));
    const auto w = random_weights(60, 0.1, 5.0, rng);
    const auto result = weighted_greedy_kmds(g, d, w);
    EXPECT_TRUE(result.fully_satisfied);
    EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
    EXPECT_NEAR(result.weight, set_weight(result.set, w), 1e-9);
  }
}

TEST(WeightedExact, MatchesUnweightedExactUnderUniformWeights) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(14, 0.25, rng);
    const auto d = clamp_demands(g, uniform_demands(14, 2));
    const auto unweighted = exact_kmds(g, d);
    const auto weighted =
        weighted_exact_kmds(g, d, uniform_weights(14));
    ASSERT_TRUE(unweighted.optimal && weighted.optimal);
    EXPECT_DOUBLE_EQ(weighted.weight,
                     static_cast<double>(unweighted.set.size()));
  }
}

TEST(WeightedExact, FindsCheaperNonMinimumCardinalitySolution) {
  // Path 0-1-2 with k=1. Cardinality optimum is {1} (cost 100); the weight
  // optimum is {0, 2} (cost 2).
  const Graph g = graph::path(3);
  NodeWeights w{1, 100, 1};
  const auto result =
      weighted_exact_kmds(g, uniform_demands(3, 1), w);
  ASSERT_TRUE(result.optimal);
  EXPECT_EQ(result.set, (std::vector<NodeId>{0, 2}));
  EXPECT_DOUBLE_EQ(result.weight, 2.0);
}

TEST(WeightedExact, InfeasibleDetected) {
  const Graph g = graph::path(3);
  const auto result = weighted_exact_kmds(g, uniform_demands(3, 4),
                                          uniform_weights(3));
  EXPECT_FALSE(result.feasible);
}

TEST(WeightedExact, GreedyNeverBeatsExact) {
  util::Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::gnp(13, 0.3, rng);
    const auto d = clamp_demands(g, uniform_demands(13, 2));
    const auto w = random_weights(13, 0.2, 3.0, rng);
    const auto exact = weighted_exact_kmds(g, d, w);
    const auto greedy = weighted_greedy_kmds(g, d, w);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(exact.weight, greedy.weight + 1e-9);
    EXPECT_TRUE(domination::is_k_dominating(g, exact.set, d));
  }
}

TEST(WeightedRounding, FeasibleAndAccounted) {
  util::Rng rng(6);
  const Graph g = graph::gnp(60, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(60, 2));
  const auto w = random_weights(60, 0.5, 2.0, rng);
  LpOptions opts;
  const auto lp = solve_fractional_kmds(g, d, opts);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto result =
        weighted_round_fractional(g, lp.primal, d, w, seed);
    EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
    EXPECT_NEAR(result.weight, set_weight(result.set, w), 1e-9);
    EXPECT_EQ(result.chosen_by_coin + result.chosen_by_request,
              static_cast<std::int64_t>(result.set.size()));
  }
}

TEST(WeightedRounding, RequestsPickCheapCandidates) {
  // All-zero fractional solution on a clique: coverage comes entirely from
  // requests, which should pick the k cheapest nodes.
  const Graph g = graph::complete(6);
  domination::FractionalSolution x;
  x.x.assign(6, 0.0);
  NodeWeights w{5, 1, 4, 2, 3, 6};
  const auto result =
      weighted_round_fractional(g, x, uniform_demands(6, 2), w, 3);
  EXPECT_EQ(result.set, (std::vector<NodeId>{1, 3}));  // cheapest two
}

TEST(WeightedLowerBound, SoundAgainstExact) {
  util::Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::gnp(14, 0.25, rng);
    const auto d = clamp_demands(g, uniform_demands(14, 2));
    const auto w = random_weights(14, 0.3, 2.5, rng);
    const auto exact = weighted_exact_kmds(g, d, w);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(weighted_lower_bound(g, d, w), exact.weight + 1e-9)
        << "trial " << trial;
  }
}

TEST(WeightedLowerBound, PerNodeRefinementBeatsPacking) {
  // One node with a large demand surrounded by expensive neighbors makes
  // the per-node bound dominate.
  const Graph g = graph::star(5);
  NodeWeights w{1, 10, 10, 10, 10};
  domination::Demands d{3, 1, 1, 1, 1};
  // Cheapest 3 in N[0]: {1, 10, 10} -> 21.
  EXPECT_DOUBLE_EQ(weighted_lower_bound(g, d, w), 21.0);
}

class WeightedSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(WeightedSweep, GreedyWithinHarmonicOfExact) {
  const auto [k, trial] = GetParam();
  util::Rng rng(900 + static_cast<std::uint64_t>(trial));
  const Graph g = graph::gnp(15, 0.3, rng);
  const auto d = clamp_demands(g, uniform_demands(15, k));
  const auto w = random_weights(15, 0.2, 4.0, rng);
  const auto exact = weighted_exact_kmds(g, d, w);
  const auto greedy = weighted_greedy_kmds(g, d, w);
  ASSERT_TRUE(exact.optimal);
  const double h = domination::harmonic(g.max_degree() + 1);
  EXPECT_LE(greedy.weight, h * exact.weight + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Range(0, 5)));

}  // namespace
}  // namespace ftc::algo
