// Tests for the Δ-free (two-hop degree knowledge) variant of Algorithm 1 —
// the paper's Remark at the end of Section 4.2.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "domination/domination.h"
#include "domination/fractional.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(TwoHopD1, MatchesBruteForce) {
  util::Rng rng(1);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d1 = two_hop_d1(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    // Brute force: max degree over all nodes within distance <= 2.
    NodeId best = g.degree(v);
    for (NodeId w : g.neighbors(v)) {
      best = std::max(best, g.degree(w));
      for (NodeId u : g.neighbors(w)) {
        best = std::max(best, g.degree(u));
      }
    }
    EXPECT_DOUBLE_EQ(d1[static_cast<std::size_t>(v)],
                     static_cast<double>(best) + 1.0)
        << "node " << v;
  }
}

TEST(TwoHopD1, EqualsGlobalOnRegularGraphs) {
  const Graph g = graph::cycle(12);
  const auto d1 = two_hop_d1(g);
  for (double v : d1) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(TwoHopVariant, AlwaysPrimalFeasible) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::barabasi_albert(60, 2, rng);  // skewed degrees
    for (std::int32_t k : {1, 2, 3}) {
      const auto d = clamp_demands(g, uniform_demands(g.n(), k));
      LpOptions opts;
      opts.degree_knowledge = DegreeKnowledge::kTwoHop;
      const auto lp = solve_fractional_kmds(g, d, opts);
      EXPECT_TRUE(domination::primal_feasible(g, lp.primal, d, 1e-6))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(TwoHopVariant, MatchesGlobalWhenDegreesAreUniform) {
  // On a vertex-degree-uniform graph the two-hop max equals Δ everywhere,
  // so the two variants must be identical.
  const Graph g = graph::cycle(20);
  const auto d = uniform_demands(20, 1);
  LpOptions global_opts, local_opts;
  local_opts.degree_knowledge = DegreeKnowledge::kTwoHop;
  const auto a = solve_fractional_kmds(g, d, global_opts);
  const auto b = solve_fractional_kmds(g, d, local_opts);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_DOUBLE_EQ(a.primal.x[static_cast<std::size_t>(v)],
                     b.primal.x[static_cast<std::size_t>(v)]);
  }
}

TEST(TwoHopVariant, ObjectiveComparableToGlobal) {
  util::Rng rng(3);
  const Graph g = graph::barabasi_albert(120, 3, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  LpOptions global_opts, local_opts;
  global_opts.t = local_opts.t = 3;
  local_opts.degree_knowledge = DegreeKnowledge::kTwoHop;
  const auto global = solve_fractional_kmds(g, d, global_opts);
  const auto local = solve_fractional_kmds(g, d, local_opts);
  // The local variant should be in the same quality class (within 2x
  // either way on this workload).
  EXPECT_LT(local.primal.objective(), 2.0 * global.primal.objective());
  EXPECT_GT(local.primal.objective(), 0.5 * global.primal.objective());
}

class TwoHopEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(TwoHopEquivalence, ProcessMatchesMirror) {
  const auto [instance, k] = GetParam();
  const std::uint64_t seed = 300 + static_cast<std::uint64_t>(instance);
  util::Rng rng(seed);
  Graph g;
  switch (instance) {
    case 0: g = graph::gnp(40, 0.12, rng); break;
    case 1: g = graph::barabasi_albert(40, 2, rng); break;
    default: g = graph::star(25); break;
  }
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));
  const int t = 2;

  LpOptions opts;
  opts.t = t;
  opts.degree_knowledge = DegreeKnowledge::kTwoHop;
  const auto mirror = solve_fractional_kmds(g, d, opts);

  sim::SyncNetwork net(g, seed);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t, DegreeKnowledge::kTwoHop);
  });
  const auto rounds = net.run(lp_round_count(t) + 8);
  EXPECT_EQ(rounds, lp_round_count(t) + 2);  // warm-up costs 2 rounds

  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_DOUBLE_EQ(net.process_as<LpKmdsProcess>(v).x(),
                     mirror.primal.x[i])
        << "node " << v;
    EXPECT_DOUBLE_EQ(net.process_as<LpKmdsProcess>(v).z(),
                     mirror.dual.z[i])
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    InstancesTimesK, TwoHopEquivalence,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values<std::int32_t>(1, 2)));

}  // namespace
}  // namespace ftc::algo
