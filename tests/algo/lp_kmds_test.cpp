#include "algo/lp/lp_kmds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "domination/bounds.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(LpKmds, Theorem45BoundFormula) {
  // t=1: 1·((Δ+1)² + (Δ+1)).
  EXPECT_DOUBLE_EQ(theorem45_bound(1, 3), 16.0 + 4.0);
  // Large t approaches 2t.
  EXPECT_NEAR(theorem45_bound(1000, 9), 2000.0, 20.0);
}

TEST(LpKmds, RoundCount) {
  EXPECT_EQ(lp_round_count(1), 4);
  EXPECT_EQ(lp_round_count(3), 20);
  EXPECT_EQ(lp_round_count(10), 202);
}

TEST(LpKmds, SingleNode) {
  const Graph g = graph::empty(1);
  const auto result = solve_fractional_kmds(g, uniform_demands(1, 1), {});
  ASSERT_EQ(result.primal.x.size(), 1u);
  EXPECT_GE(result.primal.x[0], 1.0 - 1e-9);
}

TEST(LpKmds, PrimalFeasibleOnClique) {
  const Graph g = graph::complete(8);
  for (int t : {1, 2, 4}) {
    for (std::int32_t k : {1, 3, 8}) {
      LpOptions opts;
      opts.t = t;
      const auto result =
          solve_fractional_kmds(g, uniform_demands(8, k), opts);
      EXPECT_TRUE(domination::primal_feasible(g, result.primal,
                                              uniform_demands(8, k)))
          << "t=" << t << " k=" << k;
    }
  }
}

TEST(LpKmds, ObjectiveWithinTheorem45OfLowerBound) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(60, 0.1, rng);
    for (int t : {2, 3, 5}) {
      const auto d = clamp_demands(g, uniform_demands(60, 2));
      LpOptions opts;
      opts.t = t;
      const auto result = solve_fractional_kmds(g, d, opts);
      const double lower = domination::best_lower_bound(
          g, d, 0, result.dual_bound(d));
      ASSERT_GT(lower, 0.0);
      EXPECT_LE(result.primal.objective(),
                theorem45_bound(t, g.max_degree()) * lower + 1e-6)
          << "trial " << trial << " t " << t;
    }
  }
}

TEST(LpKmds, Lemma41InvariantHolds) {
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(50, 0.15, rng);
    for (int t : {1, 2, 4}) {
      LpOptions opts;
      opts.t = t;
      const auto d = clamp_demands(g, uniform_demands(50, 2));
      const auto result = solve_fractional_kmds(g, d, opts);
      EXPECT_LE(result.max_lemma41_ratio, 1.0 + 1e-9)
          << "trial " << trial << " t " << t;
    }
  }
}

TEST(LpKmds, DualFeasibleAfterScaling) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(50, 0.12, rng);
    for (int t : {1, 3}) {
      LpOptions opts;
      opts.t = t;
      const auto d = clamp_demands(g, uniform_demands(50, 3));
      const auto result = solve_fractional_kmds(g, d, opts);
      // Lemma 4.4: raw dual violates by at most κ = t(Δ+1)^{1/t}.
      EXPECT_LE(domination::max_dual_lhs(g, result.dual),
                result.kappa + 1e-6);
      // Scaled dual is feasible.
      auto scaled = result.scaled_dual();
      domination::clamp_tiny_negatives(scaled.y);
      domination::clamp_tiny_negatives(scaled.z);
      EXPECT_TRUE(domination::dual_feasible(g, scaled, 1e-6))
          << "trial " << trial << " t " << t;
    }
  }
}

TEST(LpKmds, Lemma43AlphaBetaIdentity) {
  // Lemma 4.3: Σ(k_i·y_i − z_i) equals Σ β — and both sides relate primal
  // and dual through Lemma 4.2. We verify the directly checkable corollary:
  // the dual objective is non-negative and lower-bounds the primal after
  // scaling (weak duality).
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::gnp(40, 0.15, rng);
    const auto d = clamp_demands(g, uniform_demands(40, 2));
    LpOptions opts;
    opts.t = 3;
    const auto result = solve_fractional_kmds(g, d, opts);
    const double dual_obj = result.dual_bound(d);
    EXPECT_GE(dual_obj, -1e-6);
    // Weak duality: scaled dual objective <= OPT_f <= primal objective.
    EXPECT_LE(dual_obj, result.primal.objective() + 1e-6);
  }
}

TEST(LpKmds, ZValuesNonNegative) {
  util::Rng rng(11);
  const Graph g = graph::gnp(40, 0.2, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 2));
  const auto result = solve_fractional_kmds(g, d, {});
  for (double z : result.dual.z) {
    EXPECT_GE(z, -1e-6);
  }
}

TEST(LpKmds, YValuesNonNegative) {
  util::Rng rng(13);
  const Graph g = graph::gnp(40, 0.2, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 3));
  const auto result = solve_fractional_kmds(g, d, {});
  for (double y : result.dual.y) {
    EXPECT_GE(y, 0.0);
  }
}

TEST(LpKmds, ZeroDemandStopsAfterFirstIteration) {
  // With k_i = 0 everywhere, every node colors gray in the first inner
  // iteration; the only x-mass is the single increment (Δ+1)^{-(t-1)/t}
  // the paper's line 6 emits before the colors propagate.
  const Graph g = graph::complete(5);
  LpOptions opts;  // t = 3
  const auto result = solve_fractional_kmds(g, uniform_demands(5, 0), opts);
  const double first_increment = std::pow(5.0, -2.0 / 3.0);
  EXPECT_NEAR(result.primal.objective(), 5.0 * first_increment, 1e-6);
}

TEST(LpKmds, QuantizedAndExactAgreeClosely) {
  util::Rng rng(15);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(50, 2));
  LpOptions quantized;
  quantized.t = 3;
  LpOptions exact;
  exact.t = 3;
  exact.quantize_messages = false;
  const auto a = solve_fractional_kmds(g, d, quantized);
  const auto b = solve_fractional_kmds(g, d, exact);
  EXPECT_NEAR(a.primal.objective(), b.primal.objective(), 1e-4);
}

TEST(LpKmds, LargerTNeverHurtsMuch) {
  // The t-dependence of the bound decreases; on typical instances the
  // objective at t=6 should not exceed that at t=1.
  util::Rng rng(17);
  const Graph g = graph::gnp(80, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(80, 2));
  LpOptions t1, t6;
  t1.t = 1;
  t6.t = 6;
  const auto a = solve_fractional_kmds(g, d, t1);
  const auto b = solve_fractional_kmds(g, d, t6);
  EXPECT_LE(b.primal.objective(), a.primal.objective() + 1e-6);
}

// ---- Parameterized feasibility sweep across graph families ----

enum class Family { kGnp, kGrid, kTree, kPowerLaw, kCaveman, kStar };

class LpFeasibilitySweep
    : public ::testing::TestWithParam<std::tuple<Family, int, std::int32_t>> {
 protected:
  static Graph make(Family f, util::Rng& rng) {
    switch (f) {
      case Family::kGnp:
        return graph::gnp(70, 0.08, rng);
      case Family::kGrid:
        return graph::grid(8, 9);
      case Family::kTree:
        return graph::random_tree(70, rng);
      case Family::kPowerLaw:
        return graph::barabasi_albert(70, 2, rng);
      case Family::kCaveman:
        return graph::caveman(10, 7);
      case Family::kStar:
        return graph::star(70);
    }
    return Graph{};
  }
};

TEST_P(LpFeasibilitySweep, PrimalFeasibleAndBounded) {
  const auto [family, t, k] = GetParam();
  util::Rng rng(1234);
  const Graph g = make(family, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));
  LpOptions opts;
  opts.t = t;
  const auto result = solve_fractional_kmds(g, d, opts);

  EXPECT_TRUE(domination::primal_feasible(g, result.primal, d, 1e-6));
  EXPECT_LE(result.max_lemma41_ratio, 1.0 + 1e-9);
  for (double x : result.primal.x) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
  const double lower = domination::best_lower_bound(g, d, 0, result.dual_bound(d));
  if (lower > 0) {
    EXPECT_LE(result.primal.objective(),
              theorem45_bound(t, g.max_degree()) * lower + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, LpFeasibilitySweep,
    ::testing::Combine(::testing::Values(Family::kGnp, Family::kGrid,
                                         Family::kTree, Family::kPowerLaw,
                                         Family::kCaveman, Family::kStar),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values<std::int32_t>(1, 2, 4)));

}  // namespace
}  // namespace ftc::algo
