// Determinism and reference-equality contract of the optimized LP mirror
// (lp_kmds.cpp): the solver's output is bitwise identical at thread widths
// {1, 2, 4, 8} — forced multi-block via the parallel_block test knob so even
// unit-test-sized graphs exercise real work division — and always matches
// the kept pre-optimization solver (lp_kmds_reference.cpp) exactly.
// DESIGN.md §11.
#include <gtest/gtest.h>

#include <vector>

#include "algo/lp/lp_kmds.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::Demands;
using graph::Graph;

void expect_bitwise_equal(const LpResult& a, const LpResult& b,
                          const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.primal.x, b.primal.x);
  EXPECT_EQ(a.dual.y, b.dual.y);
  EXPECT_EQ(a.dual.z, b.dual.z);
  EXPECT_EQ(a.kappa, b.kappa);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.max_lemma41_ratio, b.max_lemma41_ratio);
}

Demands mixed_demands(const Graph& g, std::uint64_t seed) {
  Demands d(static_cast<std::size_t>(g.n()), 1);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto cap = static_cast<std::int32_t>(
        g.degree(static_cast<graph::NodeId>(i)) + 1);
    d[i] = 1 + static_cast<std::int32_t>(util::splitmix64(state) % 3);
    if (d[i] > cap) d[i] = cap;
  }
  return d;
}

TEST(LpParallel, BitwiseIdenticalAtWidths1248) {
  util::Rng rng(42);
  const Graph g = graph::gnp(240, 0.04, rng);
  const Demands demands = mixed_demands(g, 99);
  for (const int t : {1, 2, 4}) {
    for (const auto dk : {DegreeKnowledge::kGlobal, DegreeKnowledge::kTwoHop}) {
      LpOptions opts;
      opts.t = t;
      opts.degree_knowledge = dk;
      const LpResult serial = solve_fractional_kmds(g, demands, opts);
      opts.parallel_block = 16;  // force many blocks at this size
      for (const int width : {1, 2, 4, 8}) {
        opts.threads = width;
        const LpResult parallel = solve_fractional_kmds(g, demands, opts);
        expect_bitwise_equal(serial, parallel, "width sweep");
      }
    }
  }
}

TEST(LpParallel, BlockSizeUnobservable) {
  // The block decomposition is a scheduling detail: any block size must
  // yield the same bits, parallel or not.
  util::Rng rng(7);
  const Graph g = graph::barabasi_albert(150, 3, rng);
  const Demands demands = mixed_demands(g, 3);
  LpOptions opts;
  opts.t = 3;
  const LpResult baseline = solve_fractional_kmds(g, demands, opts);
  for (const int block : {1, 7, 64, 1 << 20}) {
    opts.parallel_block = block;
    for (const int width : {1, 4}) {
      opts.threads = width;
      const LpResult got = solve_fractional_kmds(g, demands, opts);
      expect_bitwise_equal(baseline, got, "block sweep");
    }
  }
}

TEST(LpParallel, OptimizedMatchesReferenceSolver) {
  util::Rng rng(5);
  const std::vector<Graph> graphs = {
      graph::gnp(120, 0.08, rng), graph::grid(9, 13), graph::star(64),
      graph::complete(40), graph::random_tree(90, rng)};
  for (const Graph& g : graphs) {
    const Demands demands = mixed_demands(g, 17);
    for (const int t : {1, 3}) {
      for (const auto dk :
           {DegreeKnowledge::kGlobal, DegreeKnowledge::kTwoHop}) {
        for (const bool quantize : {true, false}) {
          LpOptions opts;
          opts.t = t;
          opts.degree_knowledge = dk;
          opts.quantize_messages = quantize;
          const LpResult ref = solve_fractional_kmds_reference(g, demands, opts);
          const LpResult seq = solve_fractional_kmds(g, demands, opts);
          expect_bitwise_equal(ref, seq, "sequential vs reference");
          opts.threads = 8;
          opts.parallel_block = 32;
          const LpResult par = solve_fractional_kmds(g, demands, opts);
          expect_bitwise_equal(ref, par, "parallel vs reference");
        }
      }
    }
  }
}

TEST(LpParallel, TinyGraphsAnyWidth) {
  // Degenerate sizes: fewer nodes than blocks, n == 1, n == 2.
  for (const int n : {1, 2, 3}) {
    const Graph g = graph::path(n);
    const Demands demands(static_cast<std::size_t>(n), 1);
    LpOptions opts;
    opts.t = 2;
    const LpResult serial = solve_fractional_kmds(g, demands, opts);
    opts.threads = 8;
    opts.parallel_block = 1;
    const LpResult parallel = solve_fractional_kmds(g, demands, opts);
    expect_bitwise_equal(serial, parallel, "tiny graph");
  }
}

}  // namespace
}  // namespace ftc::algo
