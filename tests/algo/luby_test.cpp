#include "algo/baseline/luby.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/baseline/luby_process.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(Luby, PhaseRoundsGrowLogarithmically) {
  EXPECT_LT(luby_phase_rounds(100), luby_phase_rounds(100000));
  EXPECT_GE(luby_phase_rounds(2), 8);
}

TEST(Luby, FoldsAreIndependentSets) {
  util::Rng rng(1);
  const Graph g = graph::gnp(80, 0.1, rng);
  const auto result = luby_mis_kfold(g, 1, 42);
  EXPECT_EQ(result.forced_joins, 0);
  for (std::size_t i = 0; i < result.set.size(); ++i) {
    for (std::size_t j = i + 1; j < result.set.size(); ++j) {
      EXPECT_FALSE(g.has_edge(result.set[i], result.set[j]));
    }
  }
}

TEST(Luby, KFoldDominatesOpenMode) {
  util::Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gnp(100, 0.08, rng);
    for (std::int32_t k : {1, 2, 4}) {
      const auto result =
          luby_mis_kfold(g, k, 500 + static_cast<std::uint64_t>(trial));
      EXPECT_TRUE(domination::is_k_dominating(
          g, result.set, k, domination::Mode::kOpenForNonMembers))
          << "trial " << trial << " k " << k;
      EXPECT_EQ(result.fold_sizes.size(), static_cast<std::size_t>(k));
    }
  }
}

TEST(Luby, FoldSizesSumToSetSize) {
  util::Rng rng(3);
  const Graph g = graph::gnp(90, 0.1, rng);
  const auto result = luby_mis_kfold(g, 3, 7);
  std::int64_t total = 0;
  for (auto s : result.fold_sizes) total += s;
  EXPECT_EQ(static_cast<std::int64_t>(result.set.size()), total);
}

TEST(Luby, DeterministicPerSeed) {
  util::Rng rng(4);
  const Graph g = graph::gnp(60, 0.12, rng);
  const auto a = luby_mis_kfold(g, 2, 99);
  const auto b = luby_mis_kfold(g, 2, 99);
  EXPECT_EQ(a.set, b.set);
  const auto c = luby_mis_kfold(g, 2, 100);
  EXPECT_NE(a.set, c.set);
}

TEST(Luby, IsolatedNodesJoinEveryApplicableFold) {
  const Graph g = graph::empty(4);
  const auto result = luby_mis_kfold(g, 3, 1);
  // Isolated nodes join fold 0 and are excluded afterwards.
  EXPECT_EQ(result.set.size(), 4u);
  EXPECT_EQ(result.fold_sizes[0], 4);
  EXPECT_EQ(result.fold_sizes[1], 0);
}

TEST(Luby, CliqueSelectsKNodes) {
  const Graph g = graph::complete(8);
  const auto result = luby_mis_kfold(g, 3, 5);
  EXPECT_EQ(result.set.size(), 3u);  // one per fold
}

class LubyProcessEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(LubyProcessEquivalence, ProcessMatchesMirror) {
  const auto [instance, k] = GetParam();
  const std::uint64_t seed = 700 + static_cast<std::uint64_t>(instance);
  util::Rng rng(seed);
  Graph g;
  switch (instance) {
    case 0: g = graph::gnp(50, 0.1, rng); break;
    case 1: g = graph::star(30); break;
    case 2: g = geom::uniform_udg_with_degree(80, 10.0, rng).graph; break;
    default: g = graph::grid(6, 8); break;
  }

  const auto mirror = luby_mis_kfold(g, k, seed);

  sim::SyncNetwork net(g, seed);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<LubyMisProcess>(k); });
  const auto rounds = net.run(mirror.rounds + 4);
  EXPECT_EQ(rounds, mirror.rounds);
  EXPECT_LE(net.metrics().max_message_words, 1);

  std::vector<NodeId> dist_set;
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& p = net.process_as<LubyMisProcess>(v);
    EXPECT_TRUE(p.halted());
    EXPECT_FALSE(p.force_joined());
    if (p.selected()) dist_set.push_back(v);
  }
  EXPECT_EQ(dist_set, mirror.set);
}

INSTANTIATE_TEST_SUITE_P(
    InstancesTimesK, LubyProcessEquivalence,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<std::int32_t>(1, 2, 3)));

}  // namespace
}  // namespace ftc::algo
