#include "algo/extensions/repair.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/baseline/greedy.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::Mode;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Repair, NoFailuresIsNoOp) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.15, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 2));
  const auto base = greedy_kmds(g, d).set;
  const auto result = repair_after_failures(g, base, {}, d);
  EXPECT_EQ(result.set, base);
  EXPECT_EQ(result.promoted, 0);
  EXPECT_EQ(result.touched, 0);
  EXPECT_TRUE(result.fully_satisfied);
}

TEST(Repair, FailedMembersAreDropped) {
  const Graph g = graph::complete(5);
  const std::vector<NodeId> base{0, 1, 2};
  const std::vector<NodeId> failed{1};
  const auto result = repair_after_failures(g, base, failed,
                                            uniform_demands(5, 2));
  for (NodeId v : result.set) EXPECT_NE(v, 1);
}

TEST(Repair, RestoresCoverageOnClique) {
  const Graph g = graph::complete(6);
  const auto d = uniform_demands(6, 3);
  const std::vector<NodeId> base{0, 1, 2};
  const std::vector<NodeId> failed{0};
  const auto result = repair_after_failures(g, base, failed, d);
  EXPECT_TRUE(result.fully_satisfied);
  // Check on the live subgraph.
  const Graph live = g.without_nodes(failed);
  auto live_demands = d;
  live_demands[0] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands));
  EXPECT_EQ(result.promoted, 1);  // one replacement suffices on a clique
}

TEST(Repair, DetectsUnsatisfiableDamage) {
  // Path 0-1-2: with k=2, node 0 needs both 0/1-ish coverage; kill node 1
  // and node 0's live closed neighborhood shrinks below 2.
  const Graph g = graph::path(3);
  const auto d = uniform_demands(3, 2);
  const std::vector<NodeId> base{0, 1, 2};
  const std::vector<NodeId> failed{1};
  const auto result = repair_after_failures(g, base, failed, d);
  EXPECT_FALSE(result.fully_satisfied);
}

TEST(Repair, UnsatisfiableDamageStillRepairsBestEffort) {
  // Star with demand 2 everywhere: killing the hub leaves every leaf with a
  // closed neighborhood of size 1, so demand 2 is unsatisfiable — but the
  // repair must still promote each isolated leaf to get coverage 1.
  const Graph g = graph::star(5);
  const auto d = uniform_demands(5, 2);
  const std::vector<NodeId> base{0};
  const std::vector<NodeId> failed{0};
  const auto result = repair_after_failures(g, base, failed, d);
  EXPECT_FALSE(result.fully_satisfied);
  // Best effort: on the live graph with demands clamped to what is
  // achievable, the repaired set is a valid cover.
  const Graph live = g.without_nodes(failed);
  auto live_demands = clamp_demands(live, d);
  live_demands[0] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands));
  EXPECT_EQ(result.set, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(Repair, OpenModeIsolatedSurvivorsSelfPromote) {
  // Open mode: an isolated non-member has no neighbor that could cover it,
  // but joining the set itself exempts it from its own demand. Kill node 1
  // on a path of 3 — nodes 0 and 2 become isolated and must self-promote.
  const Graph g = graph::path(3);
  const auto d = uniform_demands(3, 1);
  const std::vector<NodeId> base{1};
  const std::vector<NodeId> failed{1};
  const auto result =
      repair_after_failures(g, base, failed, d, Mode::kOpenForNonMembers);
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(result.promoted, 2);
}

TEST(Repair, DisconnectedResidualGraphRepairsEachComponent) {
  // Two 4-cliques joined only through a bridge node 0; the base set is {0}
  // plus one dominator per side. Killing the bridge disconnects the residual
  // graph — repair must fix both components independently.
  //
  //   component A: 1-2-3-4 (clique)     component B: 5-6-7-8 (clique)
  //   bridge 0 adjacent to 1 and 5.
  std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {0, 5}};
  for (NodeId a = 1; a <= 4; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b <= 4; ++b) {
      edges.push_back({a, b});
    }
  }
  for (NodeId a = 5; a <= 8; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b <= 8; ++b) {
      edges.push_back({a, b});
    }
  }
  const Graph g = Graph::from_edges(9, edges);
  const auto d = clamp_demands(g, uniform_demands(9, 2));
  const std::vector<NodeId> base{0, 1, 5};
  const std::vector<NodeId> failed{0};

  const auto result = repair_after_failures(g, base, failed, d);
  const Graph live = g.without_nodes(failed);
  auto live_demands = clamp_demands(live, d);
  live_demands[0] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands));
  // Each component got its own promotion: members on both sides.
  bool left = false;
  bool right = false;
  for (NodeId v : result.set) {
    left |= v >= 1 && v <= 4;
    right |= v >= 5;
  }
  EXPECT_TRUE(left);
  EXPECT_TRUE(right);
}

TEST(Repair, AllNodesFailedYieldsEmptySet) {
  const Graph g = graph::complete(4);
  const auto d = uniform_demands(4, 1);
  const std::vector<NodeId> base{0};
  const std::vector<NodeId> failed{0, 1, 2, 3};
  const auto result = repair_after_failures(g, base, failed, d);
  EXPECT_TRUE(result.set.empty());
  EXPECT_EQ(result.promoted, 0);
}

class RepairSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(RepairSweep, RepairedSetIsValidOnLiveGraph) {
  const auto [k, trial] = GetParam();
  util::Rng rng(8000 + static_cast<std::uint64_t>(trial));
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(300, 14.0, rng);
  const Graph& g = udg.graph;
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));
  const auto base = greedy_kmds(g, d).set;

  // Fail 20% of the dominators.
  std::vector<NodeId> failed;
  for (std::size_t i = 0; i < base.size(); i += 5) failed.push_back(base[i]);

  const auto result = repair_after_failures(g, base, failed, d);

  const Graph live = g.without_nodes(failed);
  auto live_demands = domination::clamp_demands(live, d);
  for (NodeId f : failed) live_demands[static_cast<std::size_t>(f)] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands))
      << "k " << k << " trial " << trial;
  // fully_satisfied unless clamping was needed (it reduces demands, so a
  // false flag must coincide with a node whose demand got clamped).
  if (result.fully_satisfied) {
    auto unclamped = d;
    for (NodeId f : failed) unclamped[static_cast<std::size_t>(f)] = 0;
    EXPECT_TRUE(domination::is_k_dominating(live, result.set, unclamped));
  }
  // Repair is local: it promotes at most the damage region.
  EXPECT_LE(result.promoted, result.touched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Range(0, 5)));

TEST(Repair, OpenModeWorksWithAlgorithm3Sets) {
  util::Rng rng(5);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(300, 14.0, rng);
  UdgOptions opts;
  opts.k = 3;
  const auto alg3 = solve_udg_kmds(udg, opts, 5);

  std::vector<NodeId> failed;
  for (std::size_t i = 0; i < alg3.leaders.size(); i += 4) {
    failed.push_back(alg3.leaders[i]);
  }
  const auto d = uniform_demands(udg.n(), 3);
  const auto result = repair_after_failures(udg.graph, alg3.leaders, failed,
                                            d, Mode::kOpenForNonMembers);
  const graph::Graph live = udg.graph.without_nodes(failed);
  auto live_demands = d;
  for (NodeId f : failed) live_demands[static_cast<std::size_t>(f)] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, result.set, live_demands,
                                          Mode::kOpenForNonMembers));
}

TEST(Repair, CheaperThanRebuild) {
  util::Rng rng(6);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(500, 16.0, rng);
  const Graph& g = udg.graph;
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  const auto base = greedy_kmds(g, d).set;
  std::vector<NodeId> failed;
  for (std::size_t i = 0; i < base.size(); i += 10) failed.push_back(base[i]);

  const auto result = repair_after_failures(g, base, failed, d);
  // Local repair touches a small fraction of the network.
  EXPECT_LT(result.touched, g.n() / 2);
  // And promotes on the order of the failures, not of the whole backbone.
  EXPECT_LE(result.promoted,
            3 * static_cast<std::int64_t>(failed.size()) + 3);
}

}  // namespace
}  // namespace ftc::algo
