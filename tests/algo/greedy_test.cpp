#include "algo/baseline/greedy.h"

#include <gtest/gtest.h>

#include "domination/bounds.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Greedy, StarPicksCenter) {
  const Graph g = graph::star(8);
  const auto result = greedy_kmds(g, uniform_demands(8, 1));
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set, (std::vector<NodeId>{0}));
}

TEST(Greedy, EmptyDemandsPickNothing) {
  const Graph g = graph::complete(5);
  const auto result = greedy_kmds(g, uniform_demands(5, 0));
  EXPECT_TRUE(result.set.empty());
  EXPECT_TRUE(result.fully_satisfied);
}

TEST(Greedy, CliqueKFold) {
  const Graph g = graph::complete(6);
  const auto result = greedy_kmds(g, uniform_demands(6, 3));
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set.size(), 3u);  // any 3 clique nodes cover 3-fold
}

TEST(Greedy, ResultIsAlwaysFeasible) {
  util::Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = graph::gnp(60, 0.08, rng);
    for (std::int32_t k : {1, 2, 4}) {
      const auto d = clamp_demands(g, uniform_demands(60, k));
      const auto result = greedy_kmds(g, d);
      EXPECT_TRUE(result.fully_satisfied);
      EXPECT_TRUE(domination::is_k_dominating(g, result.set, d))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(Greedy, InfeasibleInstanceFlagged) {
  const Graph g = graph::path(3);
  const auto result = greedy_kmds(g, uniform_demands(3, 5));
  EXPECT_FALSE(result.fully_satisfied);
  // Greedy still covers what it can: everything chosen.
  EXPECT_EQ(result.set.size(), 3u);
}

TEST(Greedy, DeterministicTieBreak) {
  const Graph g = graph::cycle(6);
  const auto a = greedy_kmds(g, uniform_demands(6, 1));
  const auto b = greedy_kmds(g, uniform_demands(6, 1));
  EXPECT_EQ(a.set, b.set);
}

TEST(Greedy, RespectsHarmonicApproximation) {
  // |greedy| <= H(Δ+1) · OPT; verified against the packing bound on a
  // structured instance where OPT is known: star forest.
  const Graph g = graph::star(10);
  const auto result = greedy_kmds(g, uniform_demands(10, 1));
  EXPECT_EQ(result.set.size(), 1u);
}

TEST(Greedy, PerNodeDemands) {
  const Graph g = graph::path(4);
  domination::Demands d{1, 2, 1, 1};
  const auto result = greedy_kmds(g, d);
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
}

TEST(Greedy, StepsEqualSetSize) {
  util::Rng rng(2);
  const Graph g = graph::gnp(40, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 2));
  const auto result = greedy_kmds(g, d);
  EXPECT_EQ(result.steps, static_cast<std::int64_t>(result.set.size()));
}

TEST(Greedy, IsolatedNodesMustSelfSelect) {
  const Graph g = graph::empty(5);
  const auto result = greedy_kmds(g, uniform_demands(5, 1));
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set.size(), 5u);
}

TEST(Greedy, EmptyGraph) {
  const auto result = greedy_kmds(Graph{}, {});
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_TRUE(result.set.empty());
}

}  // namespace
}  // namespace ftc::algo
