// Equivalence of the distributed LRG (sim::Process) and its centralized
// mirror, plus schedule/quiescence behavior.
#include "algo/baseline/lrg_process.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/baseline/lrg.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

struct DistributedLrgRun {
  std::vector<NodeId> set;
  std::int64_t rounds = 0;
  sim::Metrics metrics;
};

DistributedLrgRun run_distributed(const Graph& g,
                                  const domination::Demands& demands,
                                  std::uint64_t seed) {
  sim::SyncNetwork net(g, seed);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<LrgProcess>(demands[static_cast<std::size_t>(v)]);
  });
  DistributedLrgRun run;
  run.rounds = net.run(kLrgRoundsPerIteration *
                       (lrg_max_iterations(g.n(), g.max_degree()) + 2));
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& p = net.process_as<LrgProcess>(v);
    EXPECT_TRUE(p.halted()) << "node " << v << " did not halt";
    if (p.selected()) run.set.push_back(v);
  }
  run.metrics = net.metrics();
  return run;
}

class LrgEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(LrgEquivalenceSweep, ProcessMatchesMirror) {
  const auto [instance, k] = GetParam();
  const std::uint64_t seed = 600 + static_cast<std::uint64_t>(instance);
  util::Rng rng(seed);
  Graph g;
  switch (instance) {
    case 0: g = graph::gnp(60, 0.08, rng); break;
    case 1: g = graph::gnp(40, 0.25, rng); break;
    case 2: g = graph::star(25); break;
    case 3: g = graph::grid(6, 7); break;
    case 4: g = geom::uniform_udg_with_degree(70, 9.0, rng).graph; break;
    default: g = graph::random_tree(50, rng); break;
  }
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));

  const auto mirror = lrg_kmds(g, d, seed);
  const auto dist = run_distributed(g, d, seed);
  EXPECT_EQ(dist.set, mirror.set);
}

INSTANTIATE_TEST_SUITE_P(
    InstancesTimesK, LrgEquivalenceSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values<std::int32_t>(1, 2, 3)));

TEST(LrgProcess, MessagesAreOneWord) {
  util::Rng rng(9);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = uniform_demands(50, 2);
  const auto run = run_distributed(g, clamp_demands(g, d), 3);
  EXPECT_LE(run.metrics.max_message_words, 1);
}

TEST(LrgProcess, RoundsAreIterationsTimesSchedule) {
  util::Rng rng(10);
  const Graph g = graph::gnp(60, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(60, 1));
  const auto mirror = lrg_kmds(g, d, 11);
  const auto dist = run_distributed(g, d, 11);
  // The process needs the mirror's iterations plus (at most) two wind-down
  // iterations to observe quiescence.
  EXPECT_GE(dist.rounds, mirror.iterations * kLrgRoundsPerIteration);
  EXPECT_LE(dist.rounds,
            (mirror.iterations + 2) * kLrgRoundsPerIteration + 2);
}

TEST(LrgProcess, IsolatedNodesSelfSelectAndHalt) {
  const Graph g = graph::empty(5);
  const auto d = uniform_demands(5, 1);
  const auto run = run_distributed(g, d, 1);
  EXPECT_EQ(run.set.size(), 5u);
  // One iteration of work plus quiescence detection.
  EXPECT_LE(run.rounds, 2 * kLrgRoundsPerIteration + 2);
}

TEST(LrgProcess, ResultIsKDominating) {
  util::Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gnp(80, 0.08, rng);
    const auto d = clamp_demands(g, uniform_demands(80, 2));
    const auto run =
        run_distributed(g, d, 40 + static_cast<std::uint64_t>(trial));
    EXPECT_TRUE(domination::is_k_dominating(g, run.set, d))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ftc::algo
