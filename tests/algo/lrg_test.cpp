#include "algo/baseline/lrg.h"

#include <gtest/gtest.h>

#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Lrg, ProducesFeasibleCover) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gnp(80, 0.06, rng);
    for (std::int32_t k : {1, 2, 3}) {
      const auto d = clamp_demands(g, uniform_demands(80, k));
      const auto result = lrg_kmds(g, d, 1000 + trial);
      EXPECT_TRUE(result.fully_satisfied) << "trial " << trial << " k " << k;
      EXPECT_TRUE(domination::is_k_dominating(g, result.set, d))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(Lrg, DeterministicForSeed) {
  util::Rng rng(2);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = uniform_demands(50, 1);
  const auto a = lrg_kmds(g, d, 7);
  const auto b = lrg_kmds(g, d, 7);
  EXPECT_EQ(a.set, b.set);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Lrg, DifferentSeedsUsuallyDiffer) {
  util::Rng rng(3);
  const Graph g = graph::gnp(100, 0.08, rng);
  const auto d = uniform_demands(100, 1);
  const auto a = lrg_kmds(g, d, 1);
  const auto b = lrg_kmds(g, d, 2);
  // Not a hard guarantee, but with 100 nodes collision is implausible.
  EXPECT_NE(a.set, b.set);
}

TEST(Lrg, ZeroDemandsPickNothing) {
  const Graph g = graph::complete(5);
  const auto result = lrg_kmds(g, uniform_demands(5, 0), 1);
  EXPECT_TRUE(result.set.empty());
  EXPECT_EQ(result.iterations, 0);
}

TEST(Lrg, RoundsAccounting) {
  util::Rng rng(4);
  const Graph g = graph::gnp(40, 0.15, rng);
  const auto result = lrg_kmds(g, uniform_demands(40, 1), 5);
  EXPECT_EQ(result.rounds, result.iterations * kLrgRoundsPerIteration);
  EXPECT_GT(result.iterations, 0);
}

TEST(Lrg, InfeasibleInstanceFlagged) {
  const Graph g = graph::path(3);
  const auto result = lrg_kmds(g, uniform_demands(3, 5), 1);
  EXPECT_FALSE(result.fully_satisfied);
}

TEST(Lrg, IsolatedNodesSelfSelect) {
  const Graph g = graph::empty(6);
  const auto result = lrg_kmds(g, uniform_demands(6, 1), 1);
  EXPECT_TRUE(result.fully_satisfied);
  EXPECT_EQ(result.set.size(), 6u);
}

TEST(Lrg, ConvergesInPolylogIterationsOnRandomGraphs) {
  util::Rng rng(5);
  const Graph g = graph::gnp(300, 0.03, rng);
  const auto result = lrg_kmds(g, uniform_demands(300, 2), 11);
  EXPECT_TRUE(result.fully_satisfied);
  // O(log n · log Δ) expected; allow a wide constant.
  EXPECT_LT(result.iterations, 120);
}

TEST(Lrg, StarSolvedFast) {
  const Graph g = graph::star(50);
  const auto result = lrg_kmds(g, uniform_demands(50, 1), 3);
  EXPECT_TRUE(result.fully_satisfied);
  // The hub has the uniquely maximal span, so it joins early; solution is
  // near-optimal (hub possibly plus a few stragglers).
  EXPECT_LE(result.set.size(), 5u);
}

}  // namespace
}  // namespace ftc::algo
