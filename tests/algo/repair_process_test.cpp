#include "algo/extensions/repair_process.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/extensions/repair.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::Demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

struct DistributedRun {
  std::vector<NodeId> final_set;  ///< live members after the run, sorted
  std::int64_t promoted = 0;      ///< live members not in the base set
  std::int64_t unsatisfied = 0;   ///< live nodes stuck unsatisfiable
  std::int64_t max_message_words = 0;
};

/// Runs the self-healing daemon on every node for `rounds` rounds under the
/// installed fault schedule and reports the surviving membership.
DistributedRun run_distributed(sim::SyncNetwork& net,
                               const std::vector<std::uint8_t>& base_member,
                               std::int64_t rounds) {
  const Graph& g = net.graph();
  net.run(rounds);
  DistributedRun out;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) continue;
    const auto& p = net.process_as<RepairProcess>(v);
    if (p.member()) {
      out.final_set.push_back(v);
      if (!base_member[static_cast<std::size_t>(v)]) ++out.promoted;
    }
    if (p.unsatisfied()) ++out.unsatisfied;
  }
  out.max_message_words = net.metrics().max_message_words;
  return out;
}

/// The differential acceptance sweep: on seeded (graph, fault-plan)
/// instances with perfect detection (no loss), the distributed repair must
/// (a) satisfy every satisfiable live demand and (b) promote no more than
/// the centralized oracle plus the 2-hop damage-region slack.
class RepairDifferential
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(RepairDifferential, MatchesCentralizedOracleWithinSlack) {
  const auto [k, trial] = GetParam();
  util::Rng rng(4200 + static_cast<std::uint64_t>(trial) * 17 +
                static_cast<std::uint64_t>(k));
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(150, 12.0, rng);
  const Graph& g = udg.graph;
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));
  const auto base = greedy_kmds(g, d).set;
  std::vector<std::uint8_t> base_member(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v : base) base_member[static_cast<std::size_t>(v)] = 1;

  // Rotate through the three adversaries.
  sim::FaultPlan plan = sim::FaultPlan::none();
  switch (trial % 3) {
    case 0:
      plan = sim::FaultPlan::iid_crashes(0.03, 4, 8);
      break;
    case 1:
      plan = sim::FaultPlan::targeted_by_degree(g.n() / 15, 5);
      break;
    default:
      plan = sim::FaultPlan::region(
          udg.positions[static_cast<std::size_t>(trial) % udg.positions.size()],
          1.2, 6);
      break;
  }

  RepairProcessOptions popts;
  popts.detection_timeout = 3;
  sim::SyncNetwork net(udg, 1);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(
        d[static_cast<std::size_t>(v)],
        base_member[static_cast<std::size_t>(v)] != 0, popts);
  });
  sim::FaultInjector injector(plan, 900 + static_cast<std::uint64_t>(trial));
  const auto& schedule = injector.install(net, 20);

  std::vector<NodeId> failed;
  for (const sim::FaultEvent& e : schedule) failed.push_back(e.node);

  const auto dist = run_distributed(net, base_member, 80);
  const auto oracle = repair_after_failures(g, base, failed, d);

  // (a) Every satisfiable live demand is met.
  const Graph live = g.without_nodes(failed);
  auto live_demands = clamp_demands(live, d);
  for (NodeId f : failed) live_demands[static_cast<std::size_t>(f)] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, dist.final_set, live_demands))
      << "k=" << k << " trial=" << trial << " failed=" << failed.size();

  // (b) Promotion cost: oracle + 2-hop damage-region slack.
  EXPECT_LE(dist.promoted, oracle.promoted + oracle.touched)
      << "k=" << k << " trial=" << trial;

  // When the oracle repaired everything, nobody may be left unsatisfiable.
  if (oracle.fully_satisfied) {
    EXPECT_EQ(dist.unsatisfied, 0);
  }

  // O(log n) bits: the protocol never exceeds two words per message
  // (phase tag + value).
  EXPECT_EQ(dist.max_message_words, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RepairDifferential,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Range(0, 7)));

TEST(RepairProcess, NoFaultsMeansNoActivity) {
  util::Rng rng(2);
  const Graph g = graph::gnp(50, 0.15, rng);
  const auto d = clamp_demands(g, uniform_demands(g.n(), 2));
  const auto base = greedy_kmds(g, d).set;
  std::vector<std::uint8_t> member(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v : base) member[static_cast<std::size_t>(v)] = 1;

  sim::SyncNetwork net(g, 1);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(
        d[static_cast<std::size_t>(v)],
        member[static_cast<std::size_t>(v)] != 0);
  });
  net.run(40);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.process_as<RepairProcess>(v);
    EXPECT_EQ(p.joins(), 0);
    EXPECT_EQ(p.member(), member[static_cast<std::size_t>(v)] != 0);
    EXPECT_EQ(p.monitor().suspicions_raised(), 0);
    EXPECT_EQ(p.residual(), 0);
  }
}

TEST(RepairProcess, CliqueReplacementMatchesOracleExactly) {
  const Graph g = graph::complete(6);
  const auto d = uniform_demands(6, 3);
  const std::vector<NodeId> base{0, 1, 2};

  sim::SyncNetwork net(g, 1);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(3, v <= 2);
  });
  net.schedule_crash(0, 6);
  net.run(60);

  std::int64_t joins = 0;
  std::vector<NodeId> final_set;
  for (NodeId v = 1; v < 6; ++v) {
    const auto& p = net.process_as<RepairProcess>(v);
    joins += p.joins();
    if (p.member()) final_set.push_back(v);
  }
  const auto oracle = repair_after_failures(g, base, {{0}}, d);
  EXPECT_EQ(joins, oracle.promoted);  // exactly one replacement
  EXPECT_EQ(final_set, oracle.set);   // and the same one (id tie-break)
}

TEST(RepairProcess, ChurnedNodeRejoinsAndIsCoveredAgain) {
  const Graph g = graph::complete(4);
  const auto d = uniform_demands(4, 2);
  const std::vector<NodeId> base{0, 1};
  RepairProcessOptions popts;
  popts.detection_timeout = 2;

  sim::SyncNetwork net(g, 1);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(2, v <= 1, popts);
  });
  net.schedule_crash(1, 8);
  net.schedule_recovery(1, 30,
                        std::make_unique<RepairProcess>(2, false, popts));
  net.run(80);

  ASSERT_FALSE(net.crashed(1));
  std::vector<NodeId> final_set;
  for (NodeId v = 0; v < 4; ++v) {
    const auto& p = net.process_as<RepairProcess>(v);
    if (p.member()) final_set.push_back(v);
    EXPECT_EQ(p.residual(), 0) << "node " << v;
    EXPECT_FALSE(p.unsatisfied());
  }
  // The rejoined node came back as a plain non-member and the healed set
  // still covers everyone on the full live graph.
  EXPECT_TRUE(domination::is_k_dominating(g, final_set, d));
}

TEST(RepairProcess, OpenModeSelfPromotionWorks) {
  // Path 0-1-2, open-mode demand 1 for everyone, empty initial set: each
  // non-member needs one *neighbor* in the set. The daemon must bootstrap a
  // dominating set by itself (repair from total coverage loss).
  const Graph g = graph::path(3);
  RepairProcessOptions popts;
  popts.mode = domination::Mode::kOpenForNonMembers;

  sim::SyncNetwork net(g, 1);
  net.set_all_processes([&](NodeId) {
    return std::make_unique<RepairProcess>(1, false, popts);
  });
  net.run(40);
  std::vector<NodeId> final_set;
  for (NodeId v = 0; v < 3; ++v) {
    if (net.process_as<RepairProcess>(v).member()) final_set.push_back(v);
  }
  EXPECT_TRUE(domination::is_k_dominating(
      g, final_set, uniform_demands(3, 1),
      domination::Mode::kOpenForNonMembers));
}

}  // namespace
}  // namespace ftc::algo
