#include "algo/extensions/cds.h"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/baseline/greedy.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(ConnectivityCheck, Basics) {
  const Graph g = graph::path(5);
  EXPECT_TRUE(is_connected_within_components(g, std::vector<NodeId>{}));
  EXPECT_TRUE(is_connected_within_components(g, std::vector<NodeId>{2}));
  EXPECT_TRUE(is_connected_within_components(g, std::vector<NodeId>{1, 2}));
  EXPECT_FALSE(is_connected_within_components(g, std::vector<NodeId>{0, 4}));
  EXPECT_FALSE(is_connected_within_components(g, std::vector<NodeId>{0, 2}));
}

TEST(ConnectivityCheck, PerComponent) {
  // Two disjoint edges; one member in each component is fine.
  const Graph g = Graph::from_edges(
      4, std::vector<graph::Edge>{{0, 1}, {2, 3}});
  EXPECT_TRUE(is_connected_within_components(g, std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(
      is_connected_within_components(g, std::vector<NodeId>{0, 1, 2}));
}

TEST(ConnectDs, AlreadyConnectedIsIdentity) {
  const Graph g = graph::path(5);
  const std::vector<NodeId> set{1, 2, 3};
  const auto result = connect_dominating_set(g, set);
  EXPECT_EQ(result.set, set);
  EXPECT_EQ(result.connectors_added, 0);
}

TEST(ConnectDs, BridgesTwoClustersOnPath) {
  // S = {0, 4} on a path 0-1-2-3-4: the cheapest bridge adds 1 and 3 (or a
  // chain through 2) — here depth(1)=1, depth(2)=? With Voronoi labels,
  // edge {1,2} or {2,3} crosses the boundary; cost 1+2 or symmetric. The
  // connected result must contain a full path between 0 and 4.
  const Graph g = graph::path(5);
  const std::vector<NodeId> set{0, 4};
  const auto result = connect_dominating_set(g, set);
  EXPECT_TRUE(is_connected_within_components(g, result.set));
  EXPECT_EQ(result.set, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(result.connectors_added, 3);
  EXPECT_EQ(result.bridges_used, 1);
}

TEST(ConnectDs, AdjacentClustersNeedNoConnectors) {
  // S = {0, 1} disconnected in G[S]? No — they're adjacent. Try {0, 2} on a
  // triangle-ish graph where the two are adjacent through an edge.
  const Graph g = graph::cycle(4);  // 0-1-2-3-0
  const std::vector<NodeId> set{0, 2};
  const auto result = connect_dominating_set(g, set);
  EXPECT_TRUE(is_connected_within_components(g, result.set));
  // One connector (node 1 or 3) suffices.
  EXPECT_EQ(result.connectors_added, 1);
}

TEST(ConnectDs, EmptySet) {
  const Graph g = graph::path(3);
  const auto result = connect_dominating_set(g, {});
  EXPECT_TRUE(result.set.empty());
}

TEST(ConnectDs, DisconnectedGraphConnectsPerComponent) {
  // Two far cliques; a dominating set with 2 members per clique.
  std::vector<graph::Edge> edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < 5; ++v) {
      edges.push_back({u, v});
    }
  }
  edges.push_back({5, 6});
  edges.push_back({6, 7});
  const Graph g = Graph::from_edges(8, edges);
  const std::vector<NodeId> set{0, 3, 5, 7};
  const auto result = connect_dominating_set(g, set);
  EXPECT_TRUE(is_connected_within_components(g, result.set));
}

class ConnectDsSweep
    : public ::testing::TestWithParam<std::tuple<std::int32_t, int>> {};

TEST_P(ConnectDsSweep, ConnectsAndStaysWithinThreeTimes) {
  const auto [k, trial] = GetParam();
  util::Rng rng(3000 + static_cast<std::uint64_t>(trial));
  const geom::UnitDiskGraph udg =
      geom::uniform_udg_with_degree(300, 12.0, rng);
  const Graph& g = udg.graph;
  if (!graph::is_connected(g)) {
    GTEST_SKIP() << "deployment not connected";
  }
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));
  const auto base = greedy_kmds(g, d).set;

  const auto result = connect_dominating_set(g, base);
  // Still a k-fold dominating set (we only added nodes).
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
  // Connected backbone.
  EXPECT_TRUE(is_connected_within_components(g, result.set));
  // Input preserved.
  for (NodeId v : base) {
    EXPECT_TRUE(std::binary_search(result.set.begin(), result.set.end(), v));
  }
  // Classical bound: each merge adds <= 2 connectors when S dominates, and
  // there are < |S| merges, so |S'| <= 3|S|.
  EXPECT_LE(result.set.size(), 3 * base.size());
  EXPECT_LE(result.connectors_added, 2 * result.bridges_used);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectDsSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(1, 2, 3),
                       ::testing::Range(0, 5)));

TEST(ConnectDs, WorksOnAlgorithm3Output) {
  util::Rng rng(7);
  const geom::UnitDiskGraph udg =
      geom::uniform_udg_with_degree(400, 14.0, rng);
  if (!graph::is_connected(udg.graph)) GTEST_SKIP();
  UdgOptions opts;
  opts.k = 2;
  const auto alg3 = solve_udg_kmds(udg, opts, 7);
  const auto result = connect_dominating_set(udg.graph, alg3.leaders);
  EXPECT_TRUE(is_connected_within_components(udg.graph, result.set));
  EXPECT_TRUE(domination::is_k_dominating(
      udg.graph, result.set, 2, domination::Mode::kOpenForNonMembers));
}

}  // namespace
}  // namespace ftc::algo
