#include "algo/exact/exact.h"

#include <gtest/gtest.h>

#include "algo/baseline/greedy.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

TEST(Exact, StarOptimumIsOne) {
  const Graph g = graph::star(9);
  const auto result = exact_kmds(g, uniform_demands(9, 1));
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.set.size(), 1u);
}

TEST(Exact, PathOptimum) {
  // MDS of a path of n nodes is ceil(n/3).
  for (NodeId n : {3, 4, 6, 7, 9}) {
    const Graph g = graph::path(n);
    const auto result = exact_kmds(g, uniform_demands(n, 1));
    ASSERT_TRUE(result.optimal);
    EXPECT_EQ(result.set.size(), static_cast<std::size_t>((n + 2) / 3))
        << "path of " << n;
  }
}

TEST(Exact, CliqueKFoldOptimumIsK) {
  const Graph g = graph::complete(7);
  for (std::int32_t k : {1, 2, 4, 7}) {
    const auto result = exact_kmds(g, uniform_demands(7, k));
    ASSERT_TRUE(result.optimal);
    EXPECT_EQ(result.set.size(), static_cast<std::size_t>(k));
  }
}

TEST(Exact, CycleOptimum) {
  // MDS of C_n is ceil(n/3).
  const Graph g = graph::cycle(9);
  const auto result = exact_kmds(g, uniform_demands(9, 1));
  ASSERT_TRUE(result.optimal);
  EXPECT_EQ(result.set.size(), 3u);
}

TEST(Exact, InfeasibleDetected) {
  const Graph g = graph::path(3);
  const auto result = exact_kmds(g, uniform_demands(3, 4));
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.set.empty());
}

TEST(Exact, SolutionIsFeasibleAndNotWorseThanGreedy) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::gnp(18, 0.2, rng);
    for (std::int32_t k : {1, 2, 3}) {
      const auto d = clamp_demands(g, uniform_demands(18, k));
      const auto exact = exact_kmds(g, d);
      const auto greedy = greedy_kmds(g, d);
      ASSERT_TRUE(exact.optimal);
      EXPECT_TRUE(domination::is_k_dominating(g, exact.set, d));
      EXPECT_LE(exact.set.size(), greedy.set.size());
    }
  }
}

TEST(Exact, GridOptimumMatchesKnown) {
  // 3x3 grid: MDS = 3.
  const Graph g = graph::grid(3, 3);
  const auto result = exact_kmds(g, uniform_demands(9, 1));
  ASSERT_TRUE(result.optimal);
  EXPECT_EQ(result.set.size(), 3u);
}

TEST(Exact, ZeroDemands) {
  const Graph g = graph::complete(4);
  const auto result = exact_kmds(g, uniform_demands(4, 0));
  EXPECT_TRUE(result.optimal);
  EXPECT_TRUE(result.set.empty());
}

TEST(Exact, PerNodeDemandsRespected) {
  const Graph g = graph::star(5);
  // Leaves need 1, center needs 3.
  domination::Demands d{3, 1, 1, 1, 1};
  const auto result = exact_kmds(g, d);
  ASSERT_TRUE(result.optimal);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
  EXPECT_EQ(result.set.size(), 3u);  // center + 2 leaves
}

TEST(Exact, BudgetExhaustionIsReported) {
  util::Rng rng(9);
  const Graph g = graph::gnp(40, 0.3, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 3));
  ExactOptions opts;
  opts.node_budget = 10;  // absurdly small
  const auto result = exact_kmds(g, d, opts);
  EXPECT_FALSE(result.optimal);
  // Incumbent (greedy) is still a valid cover.
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
}

TEST(Exact, EmptyGraph) {
  const auto result = exact_kmds(Graph{}, {});
  EXPECT_TRUE(result.optimal);
  EXPECT_TRUE(result.set.empty());
}

}  // namespace
}  // namespace ftc::algo
