#include "algo/rounding/rounding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algo/lp/lp_kmds.h"
#include "algo/rounding/rounding_process.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

domination::FractionalSolution lp_solution(const Graph& g,
                                           const domination::Demands& d,
                                           int t = 3) {
  LpOptions opts;
  opts.t = t;
  return solve_fractional_kmds(g, d, opts).primal;
}

TEST(Rounding, OutputIsAlwaysKDominating) {
  util::Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::gnp(60, 0.1, rng);
    for (std::int32_t k : {1, 2, 3}) {
      const auto d = clamp_demands(g, uniform_demands(60, k));
      const auto x = lp_solution(g, d);
      const auto result = round_fractional(g, x, d, 1000 + trial);
      EXPECT_TRUE(domination::is_k_dominating(g, result.set, d))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(Rounding, FeasibleEvenFromAllZeroFractional) {
  // The request phase alone must repair everything (the coin phase picks
  // nothing when x = 0). This stresses the REQ mechanism.
  const Graph g = graph::complete(6);
  domination::FractionalSolution x;
  x.x.assign(6, 0.0);
  const auto d = uniform_demands(6, 3);
  const auto result = round_fractional(g, x, d, 7);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
  EXPECT_EQ(result.chosen_by_coin, 0);
}

TEST(Rounding, AllOnesFractionalSelectsEverything) {
  const Graph g = graph::path(5);
  domination::FractionalSolution x;
  x.x.assign(5, 1.0);
  const auto result = round_fractional(g, x, uniform_demands(5, 1), 3);
  // p_i = min(1, ln(Δ+1)) = 1 when Δ >= 2.
  EXPECT_EQ(result.set.size(), 5u);
  EXPECT_EQ(result.chosen_by_coin, 5);
}

TEST(Rounding, DeterministicForSeed) {
  util::Rng rng(2);
  const Graph g = graph::gnp(50, 0.1, rng);
  const auto d = uniform_demands(50, 1);
  const auto x = lp_solution(g, d);
  const auto a = round_fractional(g, x, d, 99);
  const auto b = round_fractional(g, x, d, 99);
  EXPECT_EQ(a.set, b.set);
}

TEST(Rounding, SeedChangesOutcome) {
  util::Rng rng(3);
  const Graph g = graph::gnp(80, 0.08, rng);
  const auto d = uniform_demands(80, 1);
  const auto x = lp_solution(g, d);
  const auto a = round_fractional(g, x, d, 1);
  const auto b = round_fractional(g, x, d, 2);
  EXPECT_NE(a.set, b.set);
}

TEST(Rounding, CountersSumToSetSize) {
  util::Rng rng(4);
  const Graph g = graph::gnp(60, 0.1, rng);
  const auto d = clamp_demands(g, uniform_demands(60, 2));
  const auto x = lp_solution(g, d);
  const auto result = round_fractional(g, x, d, 5);
  EXPECT_EQ(result.chosen_by_coin + result.chosen_by_request,
            static_cast<std::int64_t>(result.set.size()));
}

TEST(Rounding, ExpectedSizeWithinTheorem46) {
  // E[|S'|] <= ρ·ln(Δ+1)·OPT + O(OPT). We check the measurable corollary:
  // averaged over seeds, |S'| / Σx_i stays below ln(Δ+1) + c for a small
  // constant c.
  util::Rng rng(5);
  const Graph g = graph::gnp(150, 0.07, rng);
  const auto d = clamp_demands(g, uniform_demands(150, 2));
  const auto x = lp_solution(g, d);
  const double frac = [&] {
    double s = 0;
    for (double xi : x.x) s += xi;
    return s;
  }();
  double total = 0;
  const int seeds = 20;
  for (int s = 0; s < seeds; ++s) {
    total += static_cast<double>(round_fractional(g, x, d, s).set.size());
  }
  const double mean = total / seeds;
  const double ln_d1 = std::log(static_cast<double>(g.max_degree()) + 1.0);
  EXPECT_LE(mean, frac * ln_d1 + 0.35 * static_cast<double>(g.n()));
}

TEST(RoundingProcess, MatchesMirrorExactly) {
  util::Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::gnp(40, 0.12, rng);
    for (std::int32_t k : {1, 2}) {
      const auto d = clamp_demands(g, uniform_demands(40, k));
      const auto x = lp_solution(g, d);
      const std::uint64_t seed = 500 + static_cast<std::uint64_t>(trial);

      const auto mirror = round_fractional(g, x, d, seed);

      sim::SyncNetwork net(g, seed);
      net.set_all_processes([&](NodeId v) {
        const auto i = static_cast<std::size_t>(v);
        return std::make_unique<RoundingProcess>(x.x[i], d[i]);
      });
      const auto rounds = net.run(10);
      EXPECT_EQ(rounds, 3);

      std::vector<NodeId> dist_set;
      std::int64_t by_coin = 0;
      for (NodeId v = 0; v < g.n(); ++v) {
        const auto& p = net.process_as<RoundingProcess>(v);
        if (p.in_set()) dist_set.push_back(v);
        if (p.chosen_by_coin()) ++by_coin;
      }
      EXPECT_EQ(dist_set, mirror.set) << "trial " << trial << " k " << k;
      EXPECT_EQ(by_coin, mirror.chosen_by_coin);
    }
  }
}

TEST(RoundingProcess, MessagesAreOneWord) {
  util::Rng rng(7);
  const Graph g = graph::gnp(30, 0.2, rng);
  const auto d = uniform_demands(30, 1);
  const auto x = lp_solution(g, d);
  sim::SyncNetwork net(g, 1);
  net.set_all_processes([&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    return std::make_unique<RoundingProcess>(x.x[i], d[i]);
  });
  net.run(10);
  EXPECT_LE(net.metrics().max_message_words, 1);
}

TEST(Rounding, PerNodeDemands) {
  const Graph g = graph::star(8);
  domination::Demands d{4, 1, 1, 1, 1, 1, 1, 1};
  const auto x = lp_solution(g, d);
  const auto result = round_fractional(g, x, d, 11);
  EXPECT_TRUE(domination::is_k_dominating(g, result.set, d));
}


TEST(RoundingBestOf, NeverWorseThanSingleTrial) {
  util::Rng rng(8);
  const Graph g = graph::gnp(80, 0.08, rng);
  const auto d = clamp_demands(g, uniform_demands(80, 2));
  const auto x = lp_solution(g, d);
  const auto single = round_fractional(g, x, d, 42);
  const auto best = round_fractional_best_of(g, x, d, 42, 8);
  EXPECT_LE(best.set.size(), single.set.size());
  EXPECT_TRUE(domination::is_k_dominating(g, best.set, d));
  EXPECT_EQ(best.rounds, 3 * 8);
}

TEST(RoundingBestOf, OneTrialEqualsSingle) {
  util::Rng rng(9);
  const Graph g = graph::gnp(40, 0.12, rng);
  const auto d = clamp_demands(g, uniform_demands(40, 1));
  const auto x = lp_solution(g, d);
  EXPECT_EQ(round_fractional_best_of(g, x, d, 5, 1).set,
            round_fractional(g, x, d, 5).set);
}

TEST(RoundingBestOf, UsuallyImprovesWithTrials) {
  util::Rng rng(10);
  const Graph g = graph::gnp(200, 0.05, rng);
  const auto d = clamp_demands(g, uniform_demands(200, 2));
  const auto x = lp_solution(g, d);
  double single_total = 0, best_total = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    single_total += static_cast<double>(
        round_fractional(g, x, d, 1000 + 16 * s).set.size());
    best_total += static_cast<double>(
        round_fractional_best_of(g, x, d, 1000 + 16 * s, 16).set.size());
  }
  EXPECT_LT(best_total, single_total);
}

}  // namespace
}  // namespace ftc::algo
