// Equivalence of the distributed Algorithm 1 (sim::Process) and its
// centralized mirror: identical x, y, z for every node, across graph
// families, t, and k.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "domination/domination.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

struct DistributedLpRun {
  std::vector<double> x, y, z;
  std::int64_t rounds = 0;
  sim::Metrics metrics;
};

DistributedLpRun run_distributed(const Graph& g,
                                 const domination::Demands& demands, int t) {
  sim::SyncNetwork net(g, 42);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<LpKmdsProcess>(
        demands[static_cast<std::size_t>(v)], t);
  });
  DistributedLpRun run;
  run.rounds = net.run(lp_round_count(t) + 8);
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto& p = net.process_as<LpKmdsProcess>(v);
    run.x.push_back(p.x());
    run.y.push_back(p.y());
    run.z.push_back(p.z());
  }
  run.metrics = net.metrics();
  return run;
}

TEST(LpProcess, RoundsMatchFormula) {
  const Graph g = graph::cycle(10);
  for (int t : {1, 2, 3}) {
    const auto run = run_distributed(g, uniform_demands(10, 1), t);
    EXPECT_EQ(run.rounds, lp_round_count(t)) << "t=" << t;
  }
}

TEST(LpProcess, MessagesAreConstantWords) {
  util::Rng rng(1);
  const Graph g = graph::gnp(40, 0.15, rng);
  const auto run = run_distributed(g, uniform_demands(40, 2), 3);
  // Largest message in Algorithm 1 carries (x, x⁺, δ̃): 3 words.
  EXPECT_LE(run.metrics.max_message_words, 3);
}

TEST(LpProcess, HaltsEvenOnEmptyGraph) {
  const Graph g = graph::empty(4);
  const auto run = run_distributed(g, uniform_demands(4, 1), 2);
  EXPECT_EQ(run.rounds, lp_round_count(2));
  for (double x : run.x) EXPECT_GE(x, 1.0 - 1e-9);  // isolated: x=1
}

class LpEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::int32_t>> {};

TEST_P(LpEquivalenceSweep, ProcessMatchesMirrorExactly) {
  const auto [graph_id, t, k] = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(graph_id));
  Graph g;
  switch (graph_id) {
    case 0: g = graph::gnp(35, 0.12, rng); break;
    case 1: g = graph::grid(5, 7); break;
    case 2: g = graph::barabasi_albert(35, 2, rng); break;
    case 3: g = graph::star(20); break;
    case 4: g = graph::random_tree(30, rng); break;
    default: g = graph::cycle(12); break;
  }
  const auto d = clamp_demands(g, uniform_demands(g.n(), k));

  LpOptions opts;
  opts.t = t;
  const LpResult mirror = solve_fractional_kmds(g, d, opts);
  const DistributedLpRun dist = run_distributed(g, d, t);

  for (NodeId v = 0; v < g.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    EXPECT_DOUBLE_EQ(dist.x[i], mirror.primal.x[i]) << "x of node " << v;
    EXPECT_DOUBLE_EQ(dist.y[i], mirror.dual.y[i]) << "y of node " << v;
    EXPECT_DOUBLE_EQ(dist.z[i], mirror.dual.z[i]) << "z of node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsTimesParams, LpEquivalenceSweep,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(1, 2, 4),
                       ::testing::Values<std::int32_t>(1, 2, 3)));

}  // namespace
}  // namespace ftc::algo
