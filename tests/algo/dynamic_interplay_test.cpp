// Dynamic-path interplay: explicit node_leave churn driven through the
// host-side IncrementalMaintainer while the SAME departures hit a live
// SyncNetwork running RepairProcess under a CoverageWatchdog. The watchdog
// (patience 1) escalates on the same rounds the in-network promotion wave
// is already reacting, so the test pins the two contracts that make that
// safe: both repair paths converge to full live coverage, and every
// mechanism is idempotent once coverage is restored (no further
// interventions, no membership drift, re-applied no-op batches change
// nothing). A second test runs the whole dynamic path — churn, maintainer,
// repair protocol, watchdog, observability — at thread widths {1,2,4,8}
// and requires bitwise-identical traces and registries (DESIGN.md §7/§13).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/baseline/greedy.h"
#include "algo/extensions/maintainer.h"
#include "algo/extensions/repair_process.h"
#include "algo/extensions/watchdog.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/graph.h"
#include "obs/plane.h"
#include "sim/mutation.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using domination::clamp_demands;
using domination::Demands;
using domination::uniform_demands;
using graph::Graph;
using graph::NodeId;

/// Departure schedule shared by the network (schedule_crash) and the
/// maintainer (node_leave batches): node -> round it leaves.
struct Departure {
  NodeId node;
  std::int64_t round;
};

/// Effective demand vector for a mutated world: inactive nodes demand
/// nothing, active ones demand min(k, deg+1) — the clamp_demands
/// convention applied to the live topology.
Demands effective_demands(const sim::DynamicWorld& world, std::int32_t k) {
  Demands d(static_cast<std::size_t>(world.n()), 0);
  for (NodeId v = 0; v < world.n(); ++v) {
    if (!world.active(v)) continue;
    const auto deg =
        static_cast<std::int32_t>(world.graph().degree(v));
    d[static_cast<std::size_t>(v)] = std::min(k, deg + 1);
  }
  return d;
}

struct InterplayRun {
  std::vector<NodeId> net_members;         ///< live RepairProcess members
  std::vector<NodeId> maintainer_members;  ///< host-side maintainer set
  std::int64_t interventions = 0;
  std::int64_t repairs_completed = 0;
  std::int64_t unsatisfied = 0;
  std::string jsonl;
  std::string metrics_json;
};

/// One seeded end-to-end run of the dynamic path at the given width.
InterplayRun run_interplay(int threads, bool with_perf) {
  util::Rng rng(777);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(120, 9.0, rng);
  const Graph& g = udg.graph;
  const std::int32_t k = 2;
  const Demands demands = clamp_demands(g, uniform_demands(g.n(), k));
  const std::vector<NodeId> base = greedy_kmds(g, demands).set;
  std::vector<std::uint8_t> base_member(static_cast<std::size_t>(g.n()), 0);
  for (NodeId v : base) base_member[static_cast<std::size_t>(v)] = 1;

  // Three waves of departures, each hitting a base member so both repair
  // paths genuinely have work to do.
  std::vector<Departure> departures;
  std::int64_t round = 8;
  for (std::size_t i = 0; i < base.size() && departures.size() < 3; i += 3) {
    departures.push_back({base[i], round});
    round += 12;
  }

  obs::PlaneOptions plane_options;
  plane_options.perf = with_perf;
  obs::Plane plane(plane_options);

  RepairProcessOptions popts;
  popts.detection_timeout = 3;
  sim::SyncNetwork net(udg, 42);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // n is small; force the pool path
  net.set_observability(&plane);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(
        demands[static_cast<std::size_t>(v)],
        base_member[static_cast<std::size_t>(v)] != 0, popts);
  });
  for (const Departure& d : departures) net.schedule_crash(d.node, d.round);

  CoverageWatchdogOptions wopts;
  wopts.patience = 1;  // escalate on the same round the wave reacts
  CoverageWatchdog watchdog(
      demands, wopts,
      [&](NodeId v) { return net.process_as<RepairProcess>(v).member(); },
      [&](NodeId v) { net.process_as<RepairProcess>(v).promote(); });

  // Host-side mirror of the same churn.
  sim::DynamicWorld world(udg);
  IncrementalMaintainer maintainer(g.n(), base, {.k = k});
  maintainer.bind_plane(&plane);

  std::size_t next = 0;
  for (std::int64_t r = 0; r < 90; ++r) {
    net.step();
    (void)watchdog.poll(net);
    while (next < departures.size() && departures[next].round == r) {
      sim::Mutation leave;
      leave.kind = sim::MutationKind::kLeave;
      leave.node = departures[next].node;
      const sim::AppliedMutation am = world.apply(leave);
      (void)maintainer.apply_batch(world.graph(), world.active_flags(),
                                   {&am, 1});
      ++next;
    }
  }

  InterplayRun out;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.crashed(v)) continue;
    const auto& p = net.process_as<RepairProcess>(v);
    if (p.member()) out.net_members.push_back(v);
    if (p.unsatisfied()) ++out.unsatisfied;
  }
  out.maintainer_members = maintainer.member_set();
  out.interventions = watchdog.interventions();
  out.repairs_completed = watchdog.repairs_completed();
  std::ostringstream trace_os;
  plane.trace().export_jsonl(trace_os);
  out.jsonl = trace_os.str();
  std::ostringstream metrics_os;
  // "perf." gauges hold wall-clock timings and are the documented exclusion
  // for determinism comparisons (obs/perf.h).
  plane.metrics().write_json(metrics_os, "perf.");
  out.metrics_json = metrics_os.str();

  // Shared postconditions, checked at every width.

  // Both repair paths restored full live coverage.
  std::vector<NodeId> failed;
  for (std::size_t i = 0; i < next; ++i) failed.push_back(departures[i].node);
  const Graph live = g.without_nodes(failed);
  Demands live_demands = clamp_demands(live, demands);
  for (NodeId f : failed) live_demands[static_cast<std::size_t>(f)] = 0;
  EXPECT_TRUE(domination::is_k_dominating(live, out.net_members, live_demands));
  EXPECT_TRUE(domination::is_k_dominating(world.snapshot(),
                                          out.maintainer_members,
                                          effective_demands(world, k)));
  // The maintainer's frozen world and the network's live graph are the
  // same topology (leave == crash: edges to the departed node vanish).
  EXPECT_EQ(world.snapshot().edges(), live.edges());

  // Idempotence once converged: more polling changes nothing, and
  // re-feeding the maintainer a clamped no-op batch is a no-op.
  for (int r = 0; r < 12; ++r) {
    net.step();
    EXPECT_FALSE(watchdog.poll(net));
  }
  EXPECT_EQ(watchdog.interventions(), out.interventions);
  EXPECT_EQ(watchdog.streak(), 0);
  EXPECT_EQ(watchdog.uncovered_demand(), 0);
  sim::Mutation again;
  again.kind = sim::MutationKind::kLeave;
  again.node = departures.front().node;  // already gone: clamped no-op
  const sim::AppliedMutation noop = world.apply(again);
  EXPECT_FALSE(noop.applied);
  const MaintainResult r2 = maintainer.apply_batch(
      world.graph(), world.active_flags(), {&noop, 1});
  EXPECT_EQ(r2.promoted, 0);
  EXPECT_EQ(r2.demoted, 0);
  EXPECT_EQ(r2.dropped, 0);
  EXPECT_EQ(maintainer.member_set(), out.maintainer_members);

  return out;
}

TEST(DynamicInterplay, WatchdogAndMaintainerConvergeAndStayIdempotent) {
  const InterplayRun run = run_interplay(1, /*with_perf=*/false);
  // The scenario must actually exercise the interplay: departures caused
  // SLO violations the watchdog saw through to recovery.
  EXPECT_GE(run.repairs_completed, 1);
  EXPECT_EQ(run.unsatisfied, 0);
  ASSERT_FALSE(run.net_members.empty());
  ASSERT_FALSE(run.maintainer_members.empty());
}

// Bitwise width-invariance for the whole dynamic path with trace AND perf
// attribution on: same memberships, same JSONL, same registry (perf.
// wall-clock gauges excluded) at every width.
TEST(DynamicInterplay, WholeDynamicPathIsWidthDeterministic) {
  const InterplayRun seq = run_interplay(1, /*with_perf=*/true);
  ASSERT_FALSE(seq.jsonl.empty());
  for (int threads : {2, 4, 8}) {
    const InterplayRun par = run_interplay(threads, /*with_perf=*/true);
    EXPECT_EQ(seq.net_members, par.net_members) << threads << " threads";
    EXPECT_EQ(seq.maintainer_members, par.maintainer_members)
        << threads << " threads";
    EXPECT_EQ(seq.interventions, par.interventions) << threads << " threads";
    EXPECT_EQ(seq.jsonl, par.jsonl) << "JSONL diverged at " << threads;
    EXPECT_EQ(seq.metrics_json, par.metrics_json)
        << "registry diverged at " << threads;
  }
}

}  // namespace
}  // namespace ftc::algo
