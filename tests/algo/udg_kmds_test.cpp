#include "algo/udg/udg_kmds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "algo/udg/udg_kmds_process.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using graph::NodeId;

TEST(UdgParams, Part1RoundsGrowsDoublyLogarithmically) {
  EXPECT_EQ(udg_part1_rounds(2), 1);
  const auto r100 = udg_part1_rounds(100);
  const auto r10k = udg_part1_rounds(10'000);
  const auto r1m = udg_part1_rounds(1'000'000);
  EXPECT_LE(r100, r10k);
  EXPECT_LE(r10k, r1m);
  // log_{1.5}(log2(1e6)) ≈ log(19.93)/log(1.5) ≈ 7.38 -> 8 rounds.
  EXPECT_EQ(r1m, 8);
}

TEST(UdgParams, InitialThetaMatchesFormula) {
  const double log2n = std::log2(1000.0);
  const double expected = 0.5 * std::pow(log2n, -1.0 / std::log2(1.5));
  EXPECT_NEAR(udg_initial_theta(1000), expected, 1e-12);
  EXPECT_DOUBLE_EQ(udg_initial_theta(2), 0.5);
}

TEST(UdgParams, FinalThetaIsAtMostHalf) {
  // θ in the last executed round must stay within the probing radius 1/2.
  for (NodeId n : {10, 100, 1000, 100000}) {
    double theta = udg_initial_theta(n);
    const auto rounds = udg_part1_rounds(n);
    for (std::int64_t r = 1; r < rounds; ++r) theta *= 2.0;
    EXPECT_LE(theta, 0.5 + 1e-12) << "n=" << n;
    // And after the final doubling the cover radius is within [1/2, 1].
    EXPECT_GE(2.0 * theta, 0.5 - 1e-12) << "n=" << n;
  }
}

TEST(UdgParams, IdRangeIsFourthPowerClamped) {
  EXPECT_EQ(udg_id_range(10), 10000u);
  EXPECT_EQ(udg_id_range(100), 100000000u);
  // Saturation at 2^62 for huge n.
  EXPECT_EQ(udg_id_range(2'000'000), std::uint64_t{1} << 62);
}

geom::UnitDiskGraph make_udg(NodeId n, double degree, std::uint64_t seed) {
  util::Rng rng(seed);
  return geom::uniform_udg_with_degree(n, degree, rng);
}

TEST(UdgKmds, Part1LeadersFormDominatingSet) {
  // Lemma 5.1: every node is a leader or adjacent to one.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto udg = make_udg(400, 12.0, seed);
    UdgOptions opts;
    opts.k = 1;
    const auto result = solve_udg_kmds(udg, opts, seed);
    EXPECT_TRUE(domination::is_k_dominating(
        udg.graph, result.part1_leaders, 1,
        domination::Mode::kOpenForNonMembers))
        << "seed " << seed;
  }
}

TEST(UdgKmds, FinalSetIsKFoldDominating) {
  for (std::uint64_t seed : {10u, 20u, 30u}) {
    const auto udg = make_udg(500, 15.0, seed);
    for (std::int32_t k : {1, 2, 3, 5}) {
      UdgOptions opts;
      opts.k = k;
      const auto result = solve_udg_kmds(udg, opts, seed);
      EXPECT_TRUE(result.fully_satisfied);
      EXPECT_TRUE(domination::is_k_dominating(
          udg.graph, result.leaders, k,
          domination::Mode::kOpenForNonMembers))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(UdgKmds, ActiveCountsDecreaseMonotonically) {
  const auto udg = make_udg(800, 20.0, 77);
  UdgOptions opts;
  opts.k = 1;
  const auto result = solve_udg_kmds(udg, opts, 77);
  for (std::size_t i = 1; i < result.active_after_round.size(); ++i) {
    EXPECT_LE(result.active_after_round[i], result.active_after_round[i - 1]);
  }
  ASSERT_FALSE(result.active_after_round.empty());
  EXPECT_EQ(result.active_after_round.back(),
            static_cast<std::int64_t>(result.part1_leaders.size()));
}

TEST(UdgKmds, DeterministicForSeed) {
  const auto udg = make_udg(300, 10.0, 5);
  UdgOptions opts;
  opts.k = 2;
  const auto a = solve_udg_kmds(udg, opts, 123);
  const auto b = solve_udg_kmds(udg, opts, 123);
  EXPECT_EQ(a.leaders, b.leaders);
  const auto c = solve_udg_kmds(udg, opts, 124);
  EXPECT_NE(a.leaders, c.leaders);  // overwhelmingly likely
}

TEST(UdgKmds, SingleNode) {
  const geom::UnitDiskGraph udg = geom::build_udg({{0.0, 0.0}}, 1.0);
  UdgOptions opts;
  opts.k = 3;
  const auto result = solve_udg_kmds(udg, opts, 1);
  EXPECT_EQ(result.leaders, (std::vector<NodeId>{0}));
}

TEST(UdgKmds, IsolatedNodesAllBecomeLeaders) {
  // Far-apart nodes: everyone elects itself forever.
  std::vector<geom::Point> pts;
  for (int i = 0; i < 5; ++i) {
    pts.push_back({static_cast<double>(i) * 10.0, 0.0});
  }
  const auto udg = geom::build_udg(pts, 1.0);
  UdgOptions opts;
  opts.k = 2;
  const auto result = solve_udg_kmds(udg, opts, 9);
  EXPECT_EQ(result.leaders.size(), 5u);
}

TEST(UdgKmds, DenseCliqueElectsFewPart1Leaders) {
  // All nodes within distance 1 of each other: Part I should thin the
  // active set down to O(1) leaders.
  util::Rng rng(42);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 0.4), rng.uniform(0.0, 0.4)});
  }
  const auto udg = geom::build_udg(pts, 1.0);
  UdgOptions opts;
  opts.k = 1;
  const auto result = solve_udg_kmds(udg, opts, 3);
  EXPECT_LE(result.part1_leaders.size(), 12u);
  EXPECT_GE(result.part1_leaders.size(), 1u);
}

TEST(UdgKmds, Part2AddsAtMostKPerLeaderPerIteration) {
  const auto udg = make_udg(400, 14.0, 55);
  UdgOptions opts;
  opts.k = 3;
  const auto result = solve_udg_kmds(udg, opts, 55);
  const auto added = static_cast<std::int64_t>(result.leaders.size()) -
                     static_cast<std::int64_t>(result.part1_leaders.size());
  EXPECT_GE(added, 0);
  EXPECT_LE(added, result.part2_iterations * 3 *
                       static_cast<std::int64_t>(result.leaders.size()));
}

class UdgProcessEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::int32_t>> {};

TEST_P(UdgProcessEquivalence, ProcessMatchesMirror) {
  const auto [instance, k] = GetParam();
  const std::uint64_t seed = 900 + static_cast<std::uint64_t>(instance);
  geom::UnitDiskGraph udg;
  switch (instance) {
    case 0: udg = make_udg(150, 8.0, seed); break;
    case 1: udg = make_udg(300, 15.0, seed); break;
    case 2: {
      util::Rng rng(seed);
      udg = geom::build_udg(geom::clustered_points(200, 5, 8.0, 0.6, rng),
                            1.0);
      break;
    }
    default: {
      util::Rng rng(seed);
      udg = geom::build_udg(geom::perturbed_grid_points(196, 10.0, 0.3, rng),
                            1.0);
      break;
    }
  }

  UdgOptions opts;
  opts.k = k;
  const auto mirror = solve_udg_kmds(udg, opts, seed);

  sim::SyncNetwork net(udg, seed);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<UdgKmdsProcess>(k); });
  const std::int64_t max_rounds =
      2 * udg_part1_rounds(udg.n()) + 3 * (udg.n() + 3);
  net.run(max_rounds);

  std::vector<NodeId> dist_leaders, dist_part1;
  for (NodeId v = 0; v < udg.n(); ++v) {
    const auto& p = net.process_as<UdgKmdsProcess>(v);
    EXPECT_TRUE(p.halted()) << "node " << v << " did not halt";
    if (p.leader()) dist_leaders.push_back(v);
    if (p.part1_leader()) dist_part1.push_back(v);
  }
  EXPECT_EQ(dist_part1, mirror.part1_leaders);
  EXPECT_EQ(dist_leaders, mirror.leaders);
}

INSTANTIATE_TEST_SUITE_P(
    InstancesTimesK, UdgProcessEquivalence,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<std::int32_t>(1, 2, 4)));

TEST(UdgProcess, MessageSizeIsConstantWords) {
  const auto udg = make_udg(200, 10.0, 31);
  sim::SyncNetwork net(udg, 31);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<UdgKmdsProcess>(2); });
  net.run(2 * udg_part1_rounds(udg.n()) + 3 * (udg.n() + 3));
  EXPECT_LE(net.metrics().max_message_words, 2);
}

TEST(UdgProcess, RunsInExpectedRoundBudget) {
  // Part I: 2R rounds; Part II: constant expected iterations. Even a very
  // conservative budget of 2R + 3·(#iterations + 2) with iterations ~ O(k)
  // should suffice on benign instances.
  const auto udg = make_udg(400, 12.0, 71);
  sim::SyncNetwork net(udg, 71);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<UdgKmdsProcess>(3); });
  const auto rounds = net.run(100000);
  const auto R = udg_part1_rounds(udg.n());
  EXPECT_LE(rounds, 2 * R + 3 * 40) << "Part II took implausibly long";
}


TEST(UdgParams, ExtendedHelpersReduceToDefaults) {
  for (NodeId n : {10, 100, 5000, 100000}) {
    EXPECT_EQ(udg_part1_rounds_ex(n, 1.5), udg_part1_rounds(n)) << n;
    EXPECT_DOUBLE_EQ(udg_initial_theta_ex(n, 1.5, 1.0),
                     udg_initial_theta(n))
        << n;
  }
}

TEST(UdgParams, ThetaScaleIsClampedToRadioRange) {
  for (NodeId n : {100, 10000}) {
    for (double xi : {1.2, 1.5, 2.0}) {
      const auto rounds = udg_part1_rounds_ex(n, xi);
      const double theta1 = udg_initial_theta_ex(n, xi, 100.0);  // huge
      const double theta_last =
          theta1 * std::pow(2.0, static_cast<double>(rounds - 1));
      EXPECT_LE(theta_last, 0.5 + 1e-12) << "n=" << n << " xi=" << xi;
    }
  }
}

TEST(UdgParams, SmallerXiMeansMoreRounds) {
  EXPECT_GT(udg_part1_rounds_ex(10000, 1.2), udg_part1_rounds_ex(10000, 2.0));
}

TEST(UdgKmds, NonDefaultParamsStillProduceValidSets) {
  util::Rng rng(99);
  const auto udg = geom::uniform_udg_with_degree(300, 12.0, rng);
  for (double xi : {1.2, 2.0}) {
    for (double scale : {0.5, 2.0}) {
      UdgOptions opts;
      opts.k = 2;
      opts.xi = xi;
      opts.theta_scale = scale;
      const auto result = solve_udg_kmds(udg, opts, 99);
      EXPECT_TRUE(domination::is_k_dominating(
          udg.graph, result.leaders, 2,
          domination::Mode::kOpenForNonMembers))
          << "xi=" << xi << " scale=" << scale;
    }
  }
}

TEST(UdgKmds, ProcessMatchesMirrorWithNonDefaultParams) {
  util::Rng rng(17);
  const auto udg = geom::uniform_udg_with_degree(150, 10.0, rng);
  UdgOptions opts;
  opts.k = 2;
  opts.xi = 2.0;
  opts.theta_scale = 2.0;
  const auto mirror = solve_udg_kmds(udg, opts, 17);

  sim::SyncNetwork net(udg, 17);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<UdgKmdsProcess>(opts); });
  net.run(2 * udg_part1_rounds_ex(udg.n(), opts.xi) + 3 * (udg.n() + 3));
  std::vector<NodeId> leaders;
  for (NodeId v = 0; v < udg.n(); ++v) {
    if (net.process_as<UdgKmdsProcess>(v).leader()) leaders.push_back(v);
  }
  EXPECT_EQ(leaders, mirror.leaders);
}

}  // namespace
}  // namespace ftc::algo
