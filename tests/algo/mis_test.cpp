#include "algo/baseline/mis_clustering.h"

#include <gtest/gtest.h>

#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::algo {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(GreedyMis, IsIndependentAndMaximal) {
  util::Rng rng(1);
  const Graph g = graph::gnp(60, 0.1, rng);
  const std::vector<std::uint8_t> all(60, 1);
  const auto mis = greedy_mis(g, all);
  // Independence.
  for (std::size_t i = 0; i < mis.size(); ++i) {
    for (std::size_t j = i + 1; j < mis.size(); ++j) {
      EXPECT_FALSE(g.has_edge(mis[i], mis[j]));
    }
  }
  // Maximality: every node is in the MIS or adjacent to it.
  const auto members = domination::to_membership(g, mis);
  for (NodeId v = 0; v < g.n(); ++v) {
    bool dominated = members[static_cast<std::size_t>(v)] != 0;
    for (NodeId w : g.neighbors(v)) {
      dominated = dominated || members[static_cast<std::size_t>(w)] != 0;
    }
    EXPECT_TRUE(dominated) << "node " << v;
  }
}

TEST(GreedyMis, RespectsEligibility) {
  const Graph g = graph::complete(4);
  std::vector<std::uint8_t> eligible{0, 1, 1, 0};
  const auto mis = greedy_mis(g, eligible);
  EXPECT_EQ(mis, (std::vector<NodeId>{1}));
}

TEST(MisKfold, OpenModeKDomination) {
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(
        300, 15.0, rng);
    for (std::int32_t k : {1, 2, 3, 5}) {
      const auto result = mis_kfold(udg.graph, k);
      EXPECT_TRUE(domination::is_k_dominating(
          udg.graph, result.set, k, domination::Mode::kOpenForNonMembers))
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(MisKfold, DisjointRounds) {
  util::Rng rng(3);
  const Graph g = graph::gnp(80, 0.08, rng);
  const auto result = mis_kfold(g, 3);
  ASSERT_EQ(result.mis_sizes.size(), 3u);
  std::int64_t total = 0;
  for (auto s : result.mis_sizes) total += s;
  // Rounds are disjoint, so the union size equals the sum of sizes.
  EXPECT_EQ(static_cast<std::int64_t>(result.set.size()), total);
}

TEST(MisKfold, KOneIsPlainMis) {
  util::Rng rng(4);
  const Graph g = graph::gnp(50, 0.12, rng);
  const std::vector<std::uint8_t> all(50, 1);
  EXPECT_EQ(mis_kfold(g, 1).set, greedy_mis(g, all));
}

TEST(MisKfold, CliqueTakesKNodes) {
  const Graph g = graph::complete(6);
  const auto result = mis_kfold(g, 3);
  EXPECT_EQ(result.set.size(), 3u);  // one node per MIS round
}

TEST(MisKfold, SmallDegreeNodesGetAbsorbed) {
  // A path with k larger than degrees: nodes exhaust their neighborhoods
  // and join the set themselves; open-mode domination still holds.
  const Graph g = graph::path(6);
  const auto result = mis_kfold(g, 4);
  EXPECT_TRUE(domination::is_k_dominating(
      g, result.set, 4, domination::Mode::kOpenForNonMembers));
}

TEST(MisKfold, GrowsRoughlyLinearlyInK) {
  util::Rng rng(5);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(400, 20.0, rng);
  const auto k1 = mis_kfold(udg.graph, 1);
  const auto k4 = mis_kfold(udg.graph, 4);
  EXPECT_GT(k4.set.size(), 2 * k1.set.size());
  EXPECT_LT(k4.set.size(), 8 * k1.set.size());
}

}  // namespace
}  // namespace ftc::algo
