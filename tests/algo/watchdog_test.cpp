#include "algo/extensions/watchdog.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/extensions/repair_process.h"
#include "graph/generators.h"
#include "obs/plane.h"
#include "sim/channel.h"
#include "sim/network.h"

namespace ftc::algo {
namespace {

using domination::Demands;
using graph::NodeId;

/// A node that does nothing: membership lives in a host-side array, so the
/// watchdog is the only repair mechanism in the deployment.
class InertProcess final : public sim::Process {
 public:
  void on_round(sim::Context&) override {}
};

TEST(CoverageWatchdog, CleanDeploymentStaysInSlo) {
  const graph::Graph g = graph::complete(6);
  sim::SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<InertProcess>(); });

  std::vector<char> members(6, 0);
  members[0] = 1;  // one member dominates a complete graph with k = 1
  CoverageWatchdog wd(
      Demands(6, 1), {},
      [&](NodeId v) { return members[static_cast<std::size_t>(v)] != 0; },
      [&](NodeId v) { members[static_cast<std::size_t>(v)] = 1; });

  for (int r = 0; r < 40; ++r) {
    net.step();
    EXPECT_FALSE(wd.poll(net));
  }
  EXPECT_EQ(wd.violation_rounds(), 0);
  EXPECT_EQ(wd.uncovered_demand(), 0);
  EXPECT_EQ(wd.interventions(), 0);
  EXPECT_EQ(wd.promotions_issued(), 0);
}

TEST(CoverageWatchdog, PatienceGatesTheEscalation) {
  const graph::Graph g = graph::complete(6);
  sim::SyncNetwork net(g, 2);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<InertProcess>(); });
  net.schedule_crash(0, 5);

  std::vector<char> members(6, 0);
  members[0] = 1;
  CoverageWatchdogOptions opts;
  opts.patience = 4;
  CoverageWatchdog wd(
      Demands(6, 1), opts,
      [&](NodeId v) { return members[static_cast<std::size_t>(v)] != 0; },
      [&](NodeId v) { members[static_cast<std::size_t>(v)] = 1; });

  std::int64_t first_violation = -1;
  std::int64_t restored = -1;
  for (int r = 0; r < 30; ++r) {
    net.step();
    const bool violated = wd.poll(net);
    if (violated && first_violation < 0) first_violation = net.round();
    if (!violated && first_violation >= 0 && restored < 0) {
      restored = net.round();
    }
  }

  // The only member crashed and nothing in the network repairs: the watchdog
  // tolerates exactly `patience` violating polls, then promotes a live node.
  EXPECT_EQ(wd.interventions(), 1);
  EXPECT_EQ(wd.violation_rounds(), opts.patience);
  EXPECT_EQ(wd.promotions_issued(), 1);
  EXPECT_EQ(wd.uncovered_demand(), 0);
  ASSERT_GE(first_violation, 0);
  ASSERT_GE(restored, 0);
  EXPECT_EQ(restored - first_violation, opts.patience);
  EXPECT_EQ(wd.streak(), 0);
}

TEST(CoverageWatchdog, UnsatisfiableResidueIsNotAViolation) {
  // Two isolated nodes, k = 1 each: when one crashes, the survivor covers
  // itself and the dead node's demand vanishes with it — no violation.
  const graph::Graph g = graph::empty(2);
  sim::SyncNetwork net(g, 3);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<InertProcess>(); });
  net.schedule_crash(1, 3);

  std::vector<char> members(2, 1);  // both self-cover
  CoverageWatchdog wd(
      Demands(2, 1), {},
      [&](NodeId v) { return members[static_cast<std::size_t>(v)] != 0; },
      [&](NodeId v) { members[static_cast<std::size_t>(v)] = 1; });
  for (int r = 0; r < 10; ++r) {
    net.step();
    EXPECT_FALSE(wd.poll(net));
  }
  EXPECT_EQ(wd.violation_rounds(), 0);
  EXPECT_EQ(wd.interventions(), 0);
}

TEST(CoverageWatchdog, PublishesSloMetricsAndInterventionTrace) {
  const graph::Graph g = graph::complete(5);
  sim::SyncNetwork net(g, 4);
  obs::Plane plane;
  net.set_observability(&plane);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<InertProcess>(); });
  net.schedule_crash(0, 2);

  std::vector<char> members(5, 0);
  members[0] = 1;
  CoverageWatchdogOptions opts;
  opts.patience = 3;
  CoverageWatchdog wd(
      Demands(5, 1), opts,
      [&](NodeId v) { return members[static_cast<std::size_t>(v)] != 0; },
      [&](NodeId v) { members[static_cast<std::size_t>(v)] = 1; });
  for (int r = 0; r < 12; ++r) {
    net.step();
    wd.poll(net);
  }

  const auto& reg = plane.metrics();
  EXPECT_EQ(reg.value(reg.find("slo.coverage_violation_rounds")),
            wd.violation_rounds());
  EXPECT_EQ(reg.value(reg.find("slo.uncovered_demand")), 0);
  EXPECT_EQ(reg.value(reg.find("watchdog.interventions")), 1);
  EXPECT_EQ(reg.value(reg.find("watchdog.promotions")),
            wd.promotions_issued());
}

// Acceptance scenario from the issue: a RepairProcess deployment under 30%
// iid loss with crashed members. The protocol heals from inside (with
// M-of-N detection tuned for lossy links); the watchdog audits ground-truth
// k-coverage, counts the out-of-SLO window, and escalates with idempotent
// promotion re-issues if the lossy waves stall. Either way the SLO metric
// must show coverage restored and then hold.
TEST(CoverageWatchdog, RestoresCoverageUnderThirtyPercentLoss) {
  const graph::Graph g = graph::complete(10);
  sim::SyncNetwork net(g, 77);
  sim::ChannelOptions channel;
  channel.loss = 0.3;
  channel.seed = 2026;
  net.set_channel(channel);

  const Demands demands(10, 2);
  RepairProcessOptions popts;
  popts.detection_window = 12;
  popts.detection_misses = 9;
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<RepairProcess>(demands[static_cast<std::size_t>(v)],
                                           v < 2, popts);
  });
  net.schedule_crash(0, 10);
  net.schedule_crash(1, 14);

  auto live_member = [&](NodeId v) {
    return !net.crashed(v) && net.process_as<RepairProcess>(v).member();
  };
  CoverageWatchdogOptions wopts;
  wopts.patience = 10;
  CoverageWatchdog wd(
      demands, wopts, live_member,
      [&](NodeId v) { net.process_as<RepairProcess>(v).promote(); });

  for (int r = 0; r < 240; ++r) {
    net.step();
    wd.poll(net);
  }
  EXPECT_GT(wd.violation_rounds(), 0);  // both initial members died
  EXPECT_EQ(wd.uncovered_demand(), 0);  // ...and coverage came back

  // SLO holds from here on: more rounds add no violation time.
  const std::int64_t settled = wd.violation_rounds();
  for (int r = 0; r < 60; ++r) {
    net.step();
    EXPECT_FALSE(wd.poll(net));
  }
  EXPECT_EQ(wd.violation_rounds(), settled);
}

}  // namespace
}  // namespace ftc::algo
