// Determinism contract of the parallel round engine: for the same (graph,
// processes, seed), SyncNetwork must produce bitwise-identical executions
// for every thread count — identical Metrics, identical per-node final
// states, and identical inbox orderings — including under crash, churn, and
// message-loss schedules compiled from a FaultPlan.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "algo/baseline/luby_process.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "obs/plane.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Records every delivered message verbatim — (round, sender, words) in
/// delivery order — so two runs can be compared for identical inbox
/// orderings, not just identical final states. Broadcasts RNG-derived
/// payloads to keep the message plane and the private streams busy.
class RecordingProcess final : public Process {
 public:
  explicit RecordingProcess(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(Context& ctx) override {
    for (const Message& msg : ctx.inbox()) {
      log_.push_back(ctx.round());
      log_.push_back(msg.from);
      for (Word w : msg.words) log_.push_back(w);
    }
    const auto draw = static_cast<Word>(ctx.rng()() & 0xFFFF);
    ctx.broadcast({draw, static_cast<Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::vector<std::int64_t> log_;

 private:
  std::int64_t rounds_;
};

struct RunResult {
  Metrics metrics;
  std::int64_t messages_lost = 0;
  std::int64_t rounds_executed = 0;
  NodeId live = 0;
  std::vector<bool> crashed;
  std::vector<std::vector<std::int64_t>> logs;  // per node

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult collect(SyncNetwork& net, std::int64_t executed) {
  RunResult r;
  r.metrics = net.metrics();
  r.messages_lost = net.messages_lost();
  r.rounds_executed = executed;
  r.live = net.live_count();
  for (NodeId v = 0; v < net.graph().n(); ++v) {
    r.crashed.push_back(net.crashed(v));
    r.logs.push_back(net.process_as<RecordingProcess>(v).log_);
  }
  return r;
}

constexpr std::int64_t kRounds = 25;

RunResult run_plain(const graph::Graph& g, std::uint64_t seed, int threads,
                    std::size_t grain = 0) {
  SyncNetwork net(g, seed);
  net.set_threads(threads);
  net.set_parallel_grain(grain);  // 0 = always use the pool (test sizes are
                                  // far below the production threshold)
  net.set_all_processes(
      [](NodeId) { return std::make_unique<RecordingProcess>(kRounds); });
  const auto executed = net.run(kRounds + 1);
  return collect(net, executed);
}

TEST(ParallelDeterminism, PlainRunMatchesSequentialForEveryThreadCount) {
  for (std::uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp(120, 0.08, rng);
    const RunResult sequential = run_plain(g, seed, 1);
    EXPECT_GT(sequential.metrics.messages_sent, 0);
    for (int threads : {2, 3, 4, 8, 16}) {
      const RunResult parallel = run_plain(g, seed, threads);
      EXPECT_EQ(sequential, parallel)
          << "seed " << seed << ", threads " << threads;
    }
  }
}

RunResult run_faulted(const geom::UnitDiskGraph& udg, std::uint64_t seed,
                      int threads) {
  SyncNetwork net(udg, seed);
  net.set_threads(threads);
  net.set_parallel_grain(0);
  net.set_message_loss(0.15, seed ^ 0xC0FFEE);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<RecordingProcess>(kRounds); });
  // Exercise every fault modality at once: background iid crashes, churn
  // (crash + rejoin with reset state), and a targeted adversary strike.
  FaultInjector injector(FaultPlan::iid_crashes(0.004, 0, 15)
                             .then(FaultPlan::churn(0.01, 2, 6, 0, 18))
                             .then(FaultPlan::targeted_by_degree(3, 5)),
                         seed + 17);
  injector.install(net, kRounds + 1, [](NodeId) {
    return std::make_unique<RecordingProcess>(kRounds);
  });
  const auto executed = net.run(kRounds + 1);
  return collect(net, executed);
}

TEST(ParallelDeterminism, FaultPlanScheduleMatchesSequential) {
  for (std::uint64_t seed : {3ULL, 99ULL}) {
    util::Rng rng(seed);
    const auto udg = geom::uniform_udg_with_degree(150, 10.0, rng);
    const RunResult sequential = run_faulted(udg, seed, 1);
    // The fault schedule must actually bite for this test to mean anything.
    EXPECT_GT(sequential.metrics.messages_sent, 0);
    EXPECT_GT(sequential.messages_lost, 0);
    for (int threads : {2, 5}) {
      const RunResult parallel = run_faulted(udg, seed, threads);
      EXPECT_EQ(sequential, parallel)
          << "seed " << seed << ", threads " << threads;
    }
  }
}

struct LossyRunResult {
  RunResult base;
  std::int64_t duplicated = 0;
  std::int64_t reordered = 0;

  friend bool operator==(const LossyRunResult&,
                         const LossyRunResult&) = default;
};

LossyRunResult run_lossy_channel(const graph::Graph& g, std::uint64_t seed,
                                 int threads) {
  obs::Plane plane;
  SyncNetwork net(g, seed);
  net.set_observability(&plane);
  net.set_threads(threads);
  net.set_parallel_grain(0);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<RecordingProcess>(kRounds); });
  // Every link-fault family at once, overlapping in time, plus crashes:
  // the compiled channel schedule must replay bitwise-identically at any
  // engine width (verdicts are stateless hashes of (seed, link, round)).
  FaultInjector injector(FaultPlan::lossy_links(0.2, 0, 18)
                             .then(FaultPlan::duplicating_links(0.3, 4, 20))
                             .then(FaultPlan::reordering_links(0.25, 3, 2, 22))
                             .then(FaultPlan::bursty_links(0.8, 0.1, 0.4, 6, 16))
                             .then(FaultPlan::asymmetric_links(0.15, 0.9, 0, 24))
                             .then(FaultPlan::iid_crashes(0.01, 5, 15)),
                         seed ^ 0xABCDEF);
  injector.install(net, kRounds + 1, [](NodeId) {
    return std::make_unique<RecordingProcess>(kRounds);
  });
  const auto executed = net.run(kRounds + 1);
  LossyRunResult r{collect(net, executed)};
  const auto& reg = plane.metrics();
  r.duplicated = reg.value(plane.builtin().messages_duplicated);
  r.reordered = reg.value(plane.builtin().messages_reordered);
  return r;
}

TEST(ParallelDeterminism, LossyChannelScheduleMatchesAtWidths148) {
  for (std::uint64_t seed : {13ULL, 4096ULL}) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp(100, 0.1, rng);
    const LossyRunResult sequential = run_lossy_channel(g, seed, 1);
    // Every impairment family must actually bite for the equality to mean
    // anything.
    EXPECT_GT(sequential.base.metrics.messages_sent, 0);
    EXPECT_GT(sequential.base.messages_lost, 0);
    EXPECT_GT(sequential.duplicated, 0);
    EXPECT_GT(sequential.reordered, 0);
    for (int threads : {2, 4, 8, 16}) {
      const LossyRunResult parallel = run_lossy_channel(g, seed, threads);
      EXPECT_EQ(sequential, parallel)
          << "seed " << seed << ", threads " << threads;
    }
  }
}

TEST(ParallelDeterminism, ThreadCountMayChangeBetweenRounds) {
  util::Rng rng(11);
  const graph::Graph g = graph::gnp(90, 0.1, rng);
  const RunResult sequential = run_plain(g, 11, 1);

  SyncNetwork net(g, 11);
  net.set_parallel_grain(0);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<RecordingProcess>(kRounds); });
  std::int64_t executed = 0;
  // Reconfigure the engine width mid-run; the execution must not notice.
  for (const int threads : {1, 4, 2, 16, 8}) {
    net.set_threads(threads);
    for (int i = 0; i < 4; ++i) {
      ++executed;
      if (!net.step()) break;
    }
  }
  net.set_threads(3);
  executed += net.run(kRounds);
  EXPECT_EQ(sequential, collect(net, executed));
}

RunResult run_crash_recover(const graph::Graph& g, std::uint64_t seed,
                            int threads) {
  SyncNetwork net(g, seed);
  net.set_threads(threads);
  net.set_parallel_grain(0);
  net.set_message_loss(0.1, seed ^ 0xFA17);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<RecordingProcess>(kRounds); });
  // Hand-written crash + rejoin schedule: victims fall mid-protocol with
  // messages in flight, then rejoin with reset state a few rounds later —
  // one of them twice (crash → rejoin → crash again → rejoin again).
  const auto factory = [](NodeId) {
    return std::make_unique<RecordingProcess>(kRounds);
  };
  net.schedule_crash(2, 3);
  net.schedule_crash(5, 3);
  net.schedule_crash(9, 7);
  net.schedule_recovery(5, 6, factory(5));
  net.schedule_recovery(2, 10, factory(2));
  net.schedule_crash(5, 12);
  net.schedule_recovery(5, 16, factory(5));
  net.schedule_recovery(9, 18, factory(9));
  const auto executed = net.run(kRounds + 1);
  return collect(net, executed);
}

TEST(ParallelDeterminism, CrashRecoveryScheduleMatchesForEveryThreadCount) {
  for (std::uint64_t seed : {2ULL, 31ULL}) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp(60, 0.12, rng);
    const RunResult sequential = run_crash_recover(g, seed, 1);
    // All scheduled rejoins happened: every victim finishes alive.
    EXPECT_FALSE(sequential.crashed[2]);
    EXPECT_FALSE(sequential.crashed[5]);
    EXPECT_FALSE(sequential.crashed[9]);
    EXPECT_EQ(sequential.live, 60);
    EXPECT_GT(sequential.messages_lost, 0);
    // A rejoined node boots from a fresh process: its log restarts after
    // the recovery round instead of continuing the pre-crash history.
    ASSERT_FALSE(sequential.logs[5].empty());
    EXPECT_GE(sequential.logs[5].front(), 16);
    for (int threads : {2, 3, 4, 5, 6, 7, 8, 16}) {
      const RunResult parallel = run_crash_recover(g, seed, threads);
      EXPECT_EQ(sequential, parallel)
          << "seed " << seed << ", threads " << threads;
    }
  }
}

TEST(ParallelDeterminism, RealAlgorithmProducesIdenticalClustering) {
  util::Rng rng(21);
  const graph::Graph g = graph::gnp(200, 0.05, rng);

  auto run_luby = [&](int threads) {
    SyncNetwork net(g, 77);
    net.set_threads(threads);
    net.set_parallel_grain(0);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<algo::LubyMisProcess>(2); });
    net.run(100000);
    std::vector<bool> selected;
    for (NodeId v = 0; v < g.n(); ++v) {
      selected.push_back(net.process_as<algo::LubyMisProcess>(v).selected());
    }
    return std::make_pair(selected, net.metrics());
  };

  const auto sequential = run_luby(1);
  const auto parallel = run_luby(6);
  EXPECT_EQ(sequential.first, parallel.first);
  EXPECT_EQ(sequential.second, parallel.second);
}

TEST(ParallelDeterminism, CrashDropsInFlightMessagesUnderParallelEngine) {
  // The sender-indexed in-flight drop must behave identically when the
  // messages were staged by a parallel round.
  const graph::Graph g = graph::star(8);
  auto run_with = [&](int threads) {
    SyncNetwork net(g, 5);
    net.set_threads(threads);
    net.set_parallel_grain(0);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<RecordingProcess>(12); });
    net.schedule_crash(3, 4);
    net.schedule_crash(0, 7);  // the hub: silences everyone afterwards
    const auto executed = net.run(20);
    return collect(net, executed);
  };
  const RunResult sequential = run_with(1);
  EXPECT_TRUE(sequential.crashed[0]);
  EXPECT_TRUE(sequential.crashed[3]);
  EXPECT_EQ(sequential.live, 6);
  EXPECT_EQ(run_with(4), sequential);
}

TEST(ParallelDeterminism, SmallNFallbackMatchesForcedParallelBitwise) {
  // The auto-sequential fallback (per-shard work below the grain threshold)
  // must be an execution-strategy choice only: running the staged phases
  // inline has to produce bitwise-identical results to forcing them through
  // the thread pool at the same width.
  for (std::uint64_t seed : {5ULL, 23ULL}) {
    util::Rng rng(seed);
    const graph::Graph g = graph::gnp(110, 0.08, rng);
    for (int threads : {2, 4, 8, 16}) {
      const RunResult forced = run_plain(g, seed, threads, 0);
      const RunResult fallback =
          run_plain(g, seed, threads, SyncNetwork::kDefaultParallelGrain);
      EXPECT_EQ(forced, fallback)
          << "seed " << seed << ", threads " << threads;
    }
  }
}

TEST(ParallelDeterminism, BroadcastPayloadSharingKeepsAccounting) {
  // One broadcast of 3 words from the hub of a star must count one message
  // per neighbor (paper accounting) even though the payload is stored once.
  const graph::Graph g = graph::star(6);

  class OneBroadcast final : public Process {
   public:
    void on_round(Context& ctx) override {
      if (ctx.self() == 0 && ctx.round() == 0) {
        ctx.broadcast({Word{1}, Word{2}, Word{3}});
      }
      if (ctx.round() >= 1) halt();
    }
  };

  for (int threads : {1, 4}) {
    SyncNetwork net(g, 1);
    net.set_threads(threads);
    net.set_parallel_grain(0);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<OneBroadcast>(); });
    net.run(4);
    EXPECT_EQ(net.metrics().messages_sent, 5);
    EXPECT_EQ(net.metrics().words_sent, 15);
    EXPECT_EQ(net.metrics().max_message_words, 3);
  }
}

}  // namespace
}  // namespace ftc::sim
