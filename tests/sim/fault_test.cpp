#include "sim/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "graph/generators.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Counts executed rounds; never halts.
class TickProcess final : public Process {
 public:
  void on_round(Context& ctx) override {
    ++ticks_;
    ctx.broadcast({Word{1}});
    if (ctx.round() >= 50) halt();
  }
  std::int64_t ticks_ = 0;
};

TEST(FaultPlan, CompileIsDeterministicPerSeed) {
  util::Rng rng(3);
  const graph::Graph g = graph::gnp(60, 0.1, rng);
  const FaultPlan plan =
      FaultPlan::iid_crashes(0.01).then(FaultPlan::targeted_by_degree(3, 10));
  const auto a = compile_fault_plan(plan, g, nullptr, 100, 7);
  const auto b = compile_fault_plan(plan, g, nullptr, 100, 7);
  const auto c = compile_fault_plan(plan, g, nullptr, 100, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.empty());
}

TEST(FaultPlan, IidRespectsWindowAndNeverKillsTwice) {
  util::Rng rng(4);
  const graph::Graph g = graph::gnp(80, 0.1, rng);
  const auto events =
      compile_fault_plan(FaultPlan::iid_crashes(0.2, 5, 9), g, nullptr, 50, 1);
  std::map<NodeId, int> crashes_per_node;
  for (const FaultEvent& e : events) {
    EXPECT_FALSE(e.recover);
    EXPECT_GE(e.round, 5);
    EXPECT_LT(e.round, 9);
    crashes_per_node[e.node] += 1;
  }
  for (const auto& [node, count] : crashes_per_node) EXPECT_EQ(count, 1);
}

TEST(FaultPlan, TargetedKillsHighestDegreeFirst) {
  const graph::Graph g = graph::star(8);  // center 0 has degree 7
  const auto events = compile_fault_plan(FaultPlan::targeted_by_degree(2, 3),
                                         g, nullptr, 10, 1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node, 0);  // the hub dies first
  EXPECT_EQ(events[1].node, 1);  // then the smallest-id leaf (degree tie)
  EXPECT_EQ(events[0].round, 3);
}

TEST(FaultPlan, RegionNeedsEmbedding) {
  const graph::Graph g = graph::path(4);
  EXPECT_THROW(compile_fault_plan(FaultPlan::region({0, 0}, 1.0, 0), g,
                                  nullptr, 10, 1),
               std::invalid_argument);
}

TEST(FaultPlan, RegionKillsExactlyTheDisk) {
  const std::vector<geom::Point> pts{{0, 0}, {0.5, 0}, {3, 0}, {3.5, 0}};
  const geom::UnitDiskGraph udg = geom::build_udg(pts, 1.0);
  const auto events = compile_fault_plan(FaultPlan::region({0, 0}, 1.0, 2),
                                         udg.graph, &udg, 10, 1);
  std::vector<NodeId> victims;
  for (const FaultEvent& e : events) victims.push_back(e.node);
  EXPECT_EQ(victims, (std::vector<NodeId>{0, 1}));
}

TEST(FaultPlan, ChurnAlternatesCrashAndRecoverPerNode) {
  util::Rng rng(5);
  const graph::Graph g = graph::gnp(60, 0.1, rng);
  const auto events = compile_fault_plan(FaultPlan::churn(0.02, 3, 9), g,
                                         nullptr, 300, 9);
  ASSERT_FALSE(events.empty());
  std::map<NodeId, std::vector<const FaultEvent*>> per_node;
  for (const FaultEvent& e : events) per_node[e.node].push_back(&e);
  bool saw_recovery = false;
  for (const auto& [node, seq] : per_node) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      // Alternating crash, recover, crash, ... with >= 1 round between.
      EXPECT_EQ(seq[i]->recover, i % 2 == 1);
      if (i > 0) {
        EXPECT_GT(seq[i]->round, seq[i - 1]->round);
      }
      saw_recovery |= seq[i]->recover;
    }
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(FaultInjector, ChurnRunsOnSyncNetworkAndRevivesNodes) {
  util::Rng rng(6);
  const graph::Graph g = graph::gnp(40, 0.15, rng);
  SyncNetwork net(g, 1);
  net.set_all_processes([](NodeId) { return std::make_unique<TickProcess>(); });

  FaultInjector injector(FaultPlan::churn(0.05, 2, 5, 0, 40), 11);
  injector.install(net, 60,
                   [](NodeId) { return std::make_unique<TickProcess>(); });
  ASSERT_GT(injector.crash_count(), 0);
  ASSERT_GT(injector.recovery_count(), 0);
  net.run(60);

  // Every node whose last event is a recovery must be live again, and its
  // fresh process must have executed fewer rounds than an original one.
  std::map<NodeId, FaultEvent> last_event;
  for (const FaultEvent& e : injector.schedule()) last_event[e.node] = e;
  bool checked_revived = false;
  for (const auto& [node, e] : last_event) {
    if (e.recover) {
      EXPECT_FALSE(net.crashed(node));
      EXPECT_LT(net.process_as<TickProcess>(node).ticks_, 51 - e.round + 1);
      checked_revived = true;
    } else {
      EXPECT_TRUE(net.crashed(node));
    }
  }
  EXPECT_TRUE(checked_revived);
  EXPECT_EQ(net.live_count(),
            static_cast<NodeId>(40 - injector.crash_count() +
                                injector.recovery_count()));
}

TEST(FaultInjector, AsyncRejectsChurn) {
  const graph::Graph g = graph::path(4);
  AsyncNetwork net(g, 1);
  FaultInjector injector(FaultPlan::churn(0.1, 1, 2), 1);
  EXPECT_THROW(injector.install(net, 10), std::invalid_argument);
}

TEST(AsyncNetwork, CrashedNodeDoesNotDeadlockNeighbors) {
  // A ring where everyone runs 12 pulses; node 2 crashes at pulse 4. The
  // link-layer halt announcement must let the others finish all 12 pulses.
  const graph::Graph g = graph::cycle(6);

  class PulseCounter final : public Process {
   public:
    void on_round(Context& ctx) override {
      ++pulses_;
      ctx.broadcast({static_cast<Word>(ctx.round())});
      if (ctx.round() >= 11) halt();
    }
    std::int64_t pulses_ = 0;
  };

  AsyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<PulseCounter>(); });
  net.schedule_crash(2, 4);
  const std::int64_t pulses = net.run(100);
  EXPECT_EQ(pulses, 12);
  EXPECT_TRUE(net.crashed(2));
  EXPECT_EQ(net.process_as<PulseCounter>(2).pulses_, 4);
  for (NodeId v : {0, 1, 3, 4, 5}) {
    EXPECT_EQ(net.process_as<PulseCounter>(v).pulses_, 12) << "node " << v;
  }
}

TEST(AsyncNetwork, CrashViaInjectorMatchesSchedule) {
  util::Rng rng(7);
  const graph::Graph g = graph::gnp(30, 0.2, rng);

  class PulseCounter final : public Process {
   public:
    void on_round(Context& ctx) override {
      ctx.broadcast({Word{0}});
      if (ctx.round() >= 19) halt();
    }
  };

  AsyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<PulseCounter>(); });
  FaultInjector injector(FaultPlan::iid_crashes(0.02, 0, 15), 13);
  const auto& schedule = injector.install(net, 20);
  ASSERT_FALSE(schedule.empty());
  net.run(100);
  for (const FaultEvent& e : schedule) {
    EXPECT_TRUE(net.crashed(e.node));
  }
}

}  // namespace
}  // namespace ftc::sim
