// Tests for the asynchronous executor (α-synchronizer), including the key
// transfer theorem the paper invokes from Awerbuch: a synchronous algorithm
// run through the synchronizer computes the same result under arbitrary
// bounded message delays.
#include "sim/async.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/lp/lp_kmds.h"
#include "algo/lp/lp_kmds_process.h"
#include "algo/rounding/rounding.h"
#include "algo/rounding/rounding_process.h"
#include "algo/udg/udg_kmds.h"
#include "algo/udg/udg_kmds_process.h"
#include "algo/baseline/lrg.h"
#include "algo/baseline/lrg_process.h"
#include "algo/baseline/luby.h"
#include "algo/baseline/luby_process.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Broadcasts a counter for `rounds` rounds; records the sum of everything
/// received per round — a strict lockstep detector: in round r every
/// neighbor's payload must carry exactly r-1.
class LockstepProbe final : public Process {
 public:
  explicit LockstepProbe(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(Context& ctx) override {
    for (const Message& msg : ctx.inbox()) {
      EXPECT_EQ(msg.words.at(0), ctx.round() - 1)
          << "node " << ctx.self() << " heard a stale/early message";
      ++heard_;
    }
    ctx.broadcast({static_cast<Word>(ctx.round())});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::int64_t heard_ = 0;

 private:
  std::int64_t rounds_;
};

TEST(AsyncNetwork, PreservesLockstepSemantics) {
  util::Rng rng(1);
  const graph::Graph g = graph::gnp(40, 0.15, rng);
  AsyncOptions opts;
  opts.max_delay = 13;  // heavy reordering
  AsyncNetwork net(g, 7, opts);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<LockstepProbe>(6); });
  const auto pulses = net.run(100);
  EXPECT_EQ(pulses, 6);
  for (NodeId v = 0; v < g.n(); ++v) {
    // 5 rounds of hearing deg messages each (round 0 hears nothing).
    EXPECT_EQ(net.process_as<LockstepProbe>(v).heard_, 5 * g.degree(v));
  }
}

TEST(AsyncNetwork, IsolatedNodesRunToCompletion) {
  const graph::Graph g = graph::empty(3);
  AsyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<LockstepProbe>(4); });
  EXPECT_EQ(net.run(100), 4);
}

TEST(AsyncNetwork, VirtualTimeScalesWithDelay) {
  util::Rng rng(2);
  const graph::Graph g = graph::gnp(30, 0.2, rng);
  auto run_with = [&](std::int64_t max_delay) {
    AsyncOptions opts;
    opts.max_delay = max_delay;
    AsyncNetwork net(g, 3, opts);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<LockstepProbe>(8); });
    net.run(100);
    return net.metrics().virtual_time;
  };
  const auto fast = run_with(1);
  const auto slow = run_with(16);
  EXPECT_EQ(fast, 8);  // unit delays: exactly one time unit per pulse
  EXPECT_GT(slow, fast);
  EXPECT_LE(slow, 8 * 16);
}

TEST(AsyncNetwork, EnvelopeOverheadIsPerEdgePerPulse) {
  const graph::Graph g = graph::cycle(10);
  AsyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<LockstepProbe>(5); });
  net.run(100);
  // Every pulse sends exactly one envelope per edge direction (payloads),
  // plus one extra halt marker per direction in the final pulse.
  EXPECT_EQ(net.metrics().envelopes_sent, 5 * 20 + 20);
  EXPECT_EQ(net.metrics().payload_messages, 5 * 20);
}

// ---- Sync/async equivalence for the paper's algorithms ----

class AsyncEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AsyncEquivalence, LpProcessSameResultUnderDelays) {
  const int max_delay = GetParam();
  util::Rng rng(10);
  const graph::Graph g = graph::gnp(30, 0.15, rng);
  const auto d = domination::clamp_demands(
      g, domination::uniform_demands(g.n(), 2));
  const int t = 2;

  SyncNetwork sync_net(g, 42);
  sync_net.set_all_processes([&](NodeId v) {
    return std::make_unique<algo::LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  sync_net.run(algo::lp_round_count(t) + 4);

  AsyncOptions opts;
  opts.max_delay = max_delay;
  AsyncNetwork async_net(g, 42, opts);
  async_net.set_all_processes([&](NodeId v) {
    return std::make_unique<algo::LpKmdsProcess>(
        d[static_cast<std::size_t>(v)], t);
  });
  async_net.run(algo::lp_round_count(t) + 4);

  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_DOUBLE_EQ(async_net.process_as<algo::LpKmdsProcess>(v).x(),
                     sync_net.process_as<algo::LpKmdsProcess>(v).x())
        << "node " << v << " max_delay " << max_delay;
    EXPECT_DOUBLE_EQ(async_net.process_as<algo::LpKmdsProcess>(v).z(),
                     sync_net.process_as<algo::LpKmdsProcess>(v).z())
        << "node " << v;
  }
}

TEST_P(AsyncEquivalence, RoundingProcessSameResultUnderDelays) {
  const int max_delay = GetParam();
  util::Rng rng(11);
  const graph::Graph g = graph::gnp(40, 0.12, rng);
  const auto d = domination::clamp_demands(
      g, domination::uniform_demands(g.n(), 2));
  algo::LpOptions lp_opts;
  const auto lp = algo::solve_fractional_kmds(g, d, lp_opts);

  const auto mirror = algo::round_fractional(g, lp.primal, d, 42);

  AsyncOptions opts;
  opts.max_delay = max_delay;
  AsyncNetwork net(g, 42, opts);
  net.set_all_processes([&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    return std::make_unique<algo::RoundingProcess>(lp.primal.x[i], d[i]);
  });
  net.run(10);

  std::vector<NodeId> async_set;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.process_as<algo::RoundingProcess>(v).in_set()) {
      async_set.push_back(v);
    }
  }
  EXPECT_EQ(async_set, mirror.set);
}

TEST_P(AsyncEquivalence, UdgProcessSameResultUnderDelays) {
  const int max_delay = GetParam();
  util::Rng rng(12);
  const auto udg = geom::uniform_udg_with_degree(120, 10.0, rng);
  const std::int32_t k = 2;

  algo::UdgOptions uopts;
  uopts.k = k;
  const auto mirror = algo::solve_udg_kmds(udg, uopts, 77);

  AsyncOptions opts;
  opts.max_delay = max_delay;
  AsyncNetwork net(udg, 77, opts);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<algo::UdgKmdsProcess>(k); });
  net.run(2 * algo::udg_part1_rounds(udg.n()) + 3 * (udg.n() + 3));

  std::vector<NodeId> async_leaders;
  for (NodeId v = 0; v < udg.n(); ++v) {
    auto& p = net.process_as<algo::UdgKmdsProcess>(v);
    EXPECT_TRUE(p.halted()) << "node " << v;
    if (p.leader()) async_leaders.push_back(v);
  }
  EXPECT_EQ(async_leaders, mirror.leaders);
}


TEST_P(AsyncEquivalence, LubyProcessSameResultUnderDelays) {
  const int max_delay = GetParam();
  util::Rng rng(13);
  const graph::Graph g = graph::gnp(40, 0.12, rng);
  const std::int32_t k = 2;

  const auto mirror = algo::luby_mis_kfold(g, k, 55);

  AsyncOptions opts;
  opts.max_delay = max_delay;
  AsyncNetwork net(g, 55, opts);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<algo::LubyMisProcess>(k); });
  net.run(mirror.rounds + 4);

  std::vector<NodeId> async_set;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.process_as<algo::LubyMisProcess>(v).selected()) {
      async_set.push_back(v);
    }
  }
  EXPECT_EQ(async_set, mirror.set);
}

TEST_P(AsyncEquivalence, LrgProcessSameResultUnderDelays) {
  const int max_delay = GetParam();
  util::Rng rng(14);
  const graph::Graph g = graph::gnp(40, 0.12, rng);
  const auto d = domination::clamp_demands(
      g, domination::uniform_demands(g.n(), 2));

  const auto mirror = algo::lrg_kmds(g, d, 66);

  AsyncOptions opts;
  opts.max_delay = max_delay;
  AsyncNetwork net(g, 66, opts);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<algo::LrgProcess>(
        d[static_cast<std::size_t>(v)]);
  });
  net.run(algo::kLrgRoundsPerIteration *
          (algo::lrg_max_iterations(g.n(), g.max_degree()) + 2));

  std::vector<NodeId> async_set;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.process_as<algo::LrgProcess>(v).selected()) {
      async_set.push_back(v);
    }
  }
  EXPECT_EQ(async_set, mirror.set);
}

INSTANTIATE_TEST_SUITE_P(DelaySweep, AsyncEquivalence,
                         ::testing::Values(1, 3, 9, 25));

}  // namespace
}  // namespace ftc::sim
