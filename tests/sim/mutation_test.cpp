// Mutation traces and DynamicWorld: serialization round-trips, defensive
// clamping of out-of-range / inactive targets, the active-active adjacency
// invariant in both modes, and the geometric-mode flip rejection.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "geom/udg.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/mutation.h"
#include "util/rng.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

TEST(MutationTrace, SerializationRoundTripsExactly) {
  MutationTrace trace;
  trace.push_back({0, {MutationKind::kJoin, -1, -1, 0.12345678901234567, 2.5}});
  trace.push_back({3, {MutationKind::kLeave, 7, -1, 0.0, 0.0}});
  trace.push_back({3, {MutationKind::kMove, 2, -1, -1.25, 1e-17}});
  trace.push_back({9, {MutationKind::kFlip, 1, 4, 0.0, 0.0}});
  const MutationTrace parsed = parse_mutation_trace(to_string(trace));
  EXPECT_EQ(parsed, trace);
  EXPECT_TRUE(parse_mutation_trace("").empty());
  EXPECT_THROW((void)parse_mutation_trace("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)parse_mutation_trace("1:9:0:0:0:0"),
               std::invalid_argument);  // unknown kind
}

TEST(MutationKindNames, AreStable) {
  EXPECT_STREQ(mutation_kind_name(MutationKind::kJoin), "join");
  EXPECT_STREQ(mutation_kind_name(MutationKind::kLeave), "leave");
  EXPECT_STREQ(mutation_kind_name(MutationKind::kMove), "move");
  EXPECT_STREQ(mutation_kind_name(MutationKind::kFlip), "flip");
}

TEST(DynamicWorld, CombinatorialJoinAnchorsToClosedNeighborhood) {
  util::Rng rng(1);
  const graph::Graph g = graph::path(4);  // 0-1-2-3
  DynamicWorld world(g);
  EXPECT_FALSE(world.geometric());

  Mutation join;
  join.kind = MutationKind::kJoin;
  join.peer = 1;
  const AppliedMutation am = world.apply(join);
  EXPECT_TRUE(am.applied);
  EXPECT_EQ(am.m.node, 4);  // assigned id is filled in
  // Joined to N[1] = {0, 1, 2}: the anchor edge first, then its neighbors.
  const std::vector<graph::Edge> expected{{1, 4}, {0, 4}, {2, 4}};
  EXPECT_EQ(am.delta.added, expected);
  EXPECT_EQ(world.n(), 5);
  EXPECT_EQ(world.active_count(), 5);
}

TEST(DynamicWorld, LeaveIsolatesAndClampsFollowups) {
  const graph::Graph g = graph::complete(4);
  DynamicWorld world(g);

  Mutation leave;
  leave.kind = MutationKind::kLeave;
  leave.node = 2;
  const AppliedMutation am = world.apply(leave);
  EXPECT_TRUE(am.applied);
  EXPECT_EQ(am.delta.removed.size(), 3u);
  EXPECT_FALSE(world.active(2));
  EXPECT_EQ(world.active_count(), 3);
  EXPECT_EQ(world.graph().degree(2), 0);

  // Leaving again, flipping onto it, or moving it: clamped no-ops.
  EXPECT_FALSE(world.apply(leave).applied);
  Mutation flip;
  flip.kind = MutationKind::kFlip;
  flip.node = 2;
  flip.peer = 0;
  EXPECT_FALSE(world.apply(flip).applied);
  Mutation move;
  move.kind = MutationKind::kMove;
  move.node = 2;
  move.peer = 0;
  EXPECT_FALSE(world.apply(move).applied);
  EXPECT_EQ(world.graph().degree(2), 0);

  // Out-of-range targets are clamped too.
  Mutation bogus;
  bogus.kind = MutationKind::kLeave;
  bogus.node = 99;
  EXPECT_FALSE(world.apply(bogus).applied);
}

TEST(DynamicWorld, FlipTogglesAndSelfFlipIsNoop) {
  const graph::Graph g = graph::path(3);  // 0-1-2
  DynamicWorld world(g);
  Mutation flip;
  flip.kind = MutationKind::kFlip;
  flip.node = 0;
  flip.peer = 2;
  const AppliedMutation on = world.apply(flip);
  EXPECT_TRUE(on.applied);
  EXPECT_EQ(on.delta.added, (std::vector<graph::Edge>{{0, 2}}));
  const AppliedMutation off = world.apply(flip);
  EXPECT_TRUE(off.applied);
  EXPECT_EQ(off.delta.removed, (std::vector<graph::Edge>{{0, 2}}));

  Mutation self;
  self.kind = MutationKind::kFlip;
  self.node = 1;
  self.peer = 1;
  EXPECT_FALSE(world.apply(self).applied);
}

TEST(DynamicWorld, GeometricModeRejectsFlips) {
  util::Rng rng(3);
  const geom::UnitDiskGraph udg =
      geom::build_udg(geom::uniform_points(10, 2.0, rng), 1.0);
  DynamicWorld world(udg);
  ASSERT_TRUE(world.geometric());
  Mutation flip;
  flip.kind = MutationKind::kFlip;
  flip.node = 0;
  flip.peer = 1;
  const AppliedMutation am = world.apply(flip);
  EXPECT_FALSE(am.applied);
  EXPECT_TRUE(am.delta.empty());
}

// The structural invariant both modes guarantee: adjacency only ever holds
// active-active edges, under any mutation stream.
TEST(DynamicWorld, AdjacencyHoldsActiveActiveEdgesOnly) {
  util::Rng rng(17);
  for (const bool geometric : {false, true}) {
    std::unique_ptr<DynamicWorld> world;
    geom::UnitDiskGraph udg;
    graph::Graph plain;
    if (geometric) {
      udg = geom::build_udg(geom::uniform_points(25, 2.5, rng), 1.0);
      world = std::make_unique<DynamicWorld>(udg);
    } else {
      plain = graph::gnp(25, 0.15, rng);
      world = std::make_unique<DynamicWorld>(plain);
    }
    for (int step = 0; step < 300; ++step) {
      Mutation m;
      const double u = rng.uniform01();
      const auto target = static_cast<NodeId>(
          rng.index(static_cast<std::size_t>(world->n())));
      if (u < 0.25) {
        m.kind = MutationKind::kJoin;
        m.peer = target;
        m.x = rng.uniform(0.0, 2.5);
        m.y = rng.uniform(0.0, 2.5);
      } else if (u < 0.6) {
        m.kind = MutationKind::kLeave;
        m.node = target;
      } else if (geometric) {
        m.kind = MutationKind::kMove;
        m.node = target;
        m.x = rng.uniform(0.0, 2.5);
        m.y = rng.uniform(0.0, 2.5);
      } else {
        m.kind = MutationKind::kFlip;
        m.node = target;
        m.peer = static_cast<NodeId>(
            rng.index(static_cast<std::size_t>(world->n())));
      }
      world->apply(m);
      for (NodeId v = 0; v < world->n(); ++v) {
        if (world->active(v)) continue;
        ASSERT_EQ(world->graph().degree(v), 0)
            << (geometric ? "geometric" : "combinatorial") << " step " << step;
      }
    }
    // snapshot() freezes to a CSR with the same arc count.
    EXPECT_EQ(static_cast<std::size_t>(world->snapshot().m()),
              world->graph().m());
  }
}

}  // namespace
}  // namespace ftc::sim
