#include "sim/heartbeat.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "graph/generators.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Broadcasts a beacon every round and feeds its monitor — the minimal
/// heartbeat host. Records when each suspicion was first raised.
class BeaconProcess final : public Process {
 public:
  explicit BeaconProcess(std::int64_t timeout)
      : monitor_(HeartbeatMonitor::Options{timeout}) {}

  void on_round(Context& ctx) override {
    monitor_.observe(ctx);
    for (NodeId w : ctx.neighbors()) {
      if (monitor_.suspects(w) &&
          first_suspected_round_.find(w) == first_suspected_round_.end()) {
        first_suspected_round_[w] = ctx.round();
      }
    }
    ctx.broadcast({Word{1}});
    if (ctx.round() >= 39) halt();
  }

  HeartbeatMonitor monitor_;
  std::map<NodeId, std::int64_t> first_suspected_round_;
};

TEST(HeartbeatMonitor, NoSuspicionsOnReliableLinks) {
  const graph::Graph g = graph::complete(5);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<BeaconProcess>(3); });
  net.run(40);
  for (NodeId v = 0; v < 5; ++v) {
    const auto& p = net.process_as<BeaconProcess>(v);
    EXPECT_EQ(p.monitor_.suspicions_raised(), 0);
    EXPECT_TRUE(p.monitor_.suspected().empty());
  }
}

TEST(HeartbeatMonitor, DetectsCrashAfterExactlyTimeoutRounds) {
  const std::int64_t timeout = 4;
  const std::int64_t crash_round = 10;
  const graph::Graph g = graph::complete(4);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<BeaconProcess>(timeout); });
  net.schedule_crash(3, crash_round);
  net.run(40);
  for (NodeId v = 0; v < 3; ++v) {
    const auto& p = net.process_as<BeaconProcess>(v);
    EXPECT_TRUE(p.monitor_.suspects(3));
    // The crash at the start of crash_round drops 3's in-flight heartbeat,
    // so the last one heard arrived in round crash_round - 1; suspicion
    // fires once the gap exceeds the timeout.
    ASSERT_TRUE(p.first_suspected_round_.count(3));
    EXPECT_EQ(p.first_suspected_round_.at(3), crash_round + timeout);
    EXPECT_EQ(p.monitor_.suspicions_raised(), 1);
    EXPECT_EQ(p.monitor_.refuted_suspicions(), 0);
  }
}

TEST(HeartbeatMonitor, SuspectsNeighborDeadFromTheStart) {
  const std::int64_t timeout = 3;
  const graph::Graph g = graph::path(2);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<BeaconProcess>(timeout); });
  net.crash(1);
  net.run(40);
  const auto& p = net.process_as<BeaconProcess>(0);
  EXPECT_TRUE(p.monitor_.suspects(1));
  // Grace treats round -1 as the last-heard round.
  EXPECT_EQ(p.first_suspected_round_.at(1), timeout);
}

TEST(HeartbeatMonitor, FalseSuspicionsAreRefutedUnderLoss) {
  // Aggressive timeout + heavy loss: false suspicions must occur, and every
  // one of them must be withdrawn once the live neighbor is heard again.
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_message_loss(0.6, 1234);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<BeaconProcess>(1); });
  net.run(40);
  std::int64_t raised = 0;
  std::int64_t refuted = 0;
  for (NodeId v = 0; v < 3; ++v) {
    const auto& p = net.process_as<BeaconProcess>(v);
    raised += p.monitor_.suspicions_raised();
    refuted += p.monitor_.refuted_suspicions();
  }
  EXPECT_GT(raised, 0);
  EXPECT_GT(refuted, 0);
  EXPECT_LE(refuted, raised);
}

/// BeaconProcess with the full detector option set (M-of-N experiments).
class WindowedBeacon final : public Process {
 public:
  explicit WindowedBeacon(HeartbeatMonitor::Options options)
      : monitor_(options) {}

  void on_round(Context& ctx) override {
    monitor_.observe(ctx);
    ctx.broadcast({Word{1}});
    if (ctx.round() >= 59) halt();
  }

  HeartbeatMonitor monitor_;
};

struct SuspicionStats {
  std::int64_t raised = 0;
  std::int64_t refuted = 0;

  friend bool operator==(const SuspicionStats&,
                         const SuspicionStats&) = default;
};

/// All-live beacon mesh under iid loss: every suspicion raised is false.
SuspicionStats run_all_live(double loss, int threads,
                            HeartbeatMonitor::Options options) {
  const graph::Graph g = graph::complete(6);
  SyncNetwork net(g, 9);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // small n: force the pool, not the fallback
  if (loss > 0.0) net.set_message_loss(loss, 777);
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<WindowedBeacon>(options); });
  net.run(60);
  SuspicionStats stats;
  for (NodeId v = 0; v < 6; ++v) {
    const auto& m = net.process_as<WindowedBeacon>(v).monitor_;
    stats.raised += m.suspicions_raised();
    stats.refuted += m.refuted_suspicions();
  }
  return stats;
}

TEST(HeartbeatMonitor, FalseSuspicionBoundsAcrossLossAndWidths) {
  // M-of-N detector tuned for lossy links: suspect after 9 missed beats in
  // a 10-round window. With 6 nodes x 5 neighbors x 60 rounds there are
  // ~1800 suspicion opportunities per run; the false-suspicion probability
  // per opportunity is ~1.4e-4 at 30% iid loss and ~1e-8 at 10%, so the
  // totals must stay tiny — and identical at every engine width.
  HeartbeatMonitor::Options options;
  options.window = 10;
  options.misses_to_suspect = 9;
  for (const double loss : {0.0, 0.1, 0.3}) {
    const SuspicionStats serial = run_all_live(loss, 1, options);
    if (loss == 0.0) {
      EXPECT_EQ(serial.raised, 0);
    } else {
      EXPECT_LE(serial.raised, 3) << "loss=" << loss;
    }
    // Every false suspicion is eventually refuted by the live beacon; at
    // run end at most a handful can still be pending.
    EXPECT_LE(serial.raised - serial.refuted, 2) << "loss=" << loss;
    for (int threads = 2; threads <= 8; ++threads) {
      EXPECT_EQ(run_all_live(loss, threads, options), serial)
          << "loss=" << loss << " threads=" << threads;
    }
  }
}

TEST(HeartbeatMonitor, WindowedModeBeatsConsecutiveTimeoutsUnderLoss) {
  // At 30% loss an aggressive consecutive-timeout detector false-suspects
  // constantly; the M-of-N detector with the same detection latency is far
  // quieter. (Both deterministic: fixed seeds.)
  HeartbeatMonitor::Options consecutive;
  consecutive.timeout = 1;
  HeartbeatMonitor::Options windowed;
  windowed.window = 8;
  windowed.misses_to_suspect = 6;
  const SuspicionStats noisy = run_all_live(0.3, 1, consecutive);
  const SuspicionStats quiet = run_all_live(0.3, 1, windowed);
  EXPECT_GT(noisy.raised, 0);
  EXPECT_LT(quiet.raised, noisy.raised);
}

TEST(HeartbeatMonitor, WindowedModeStillDetectsRealCrash) {
  const graph::Graph g = graph::complete(4);
  SyncNetwork net(g, 5);
  net.set_message_loss(0.2, 31);
  HeartbeatMonitor::Options options;
  options.window = 8;
  options.misses_to_suspect = 6;
  net.set_all_processes(
      [&](NodeId) { return std::make_unique<WindowedBeacon>(options); });
  net.schedule_crash(3, 10);
  net.run(60);
  for (NodeId v = 0; v < 3; ++v) {
    // A dead neighbor misses every slot: permanently suspected.
    EXPECT_TRUE(net.process_as<WindowedBeacon>(v).monitor_.suspects(3))
        << "node " << v;
  }
}

TEST(HeartbeatMonitor, RefutationClearsTheSuspectList) {
  // Manually drive a monitor through a silence gap followed by a beacon.
  const graph::Graph g = graph::path(2);

  class QuietThenLoud final : public Process {
   public:
    void on_round(Context& ctx) override {
      // Silent for rounds 0..5, beacons afterwards.
      if (ctx.round() > 5) ctx.broadcast({Word{1}});
      if (ctx.round() >= 19) halt();
    }
  };
  class Watcher final : public Process {
   public:
    Watcher() : monitor_(HeartbeatMonitor::Options{2}) {}
    void on_round(Context& ctx) override {
      monitor_.observe(ctx);
      ctx.broadcast({Word{1}});
      if (ctx.round() >= 19) halt();
    }
    HeartbeatMonitor monitor_;
  };

  SyncNetwork net(g, 1);
  net.set_process(0, std::make_unique<Watcher>());
  net.set_process(1, std::make_unique<QuietThenLoud>());
  net.run(25);
  const auto& m = net.process_as<Watcher>(0).monitor_;
  EXPECT_EQ(m.suspicions_raised(), 1);   // raised during the silence
  EXPECT_EQ(m.refuted_suspicions(), 1);  // withdrawn at the first beacon
  EXPECT_FALSE(m.suspects(1));
}

}  // namespace
}  // namespace ftc::sim
