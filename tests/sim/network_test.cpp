#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Broadcasts its id once, then records everything it hears until round
/// `lifetime`, then halts.
class GossipProcess final : public Process {
 public:
  explicit GossipProcess(std::int64_t lifetime) : lifetime_(lifetime) {}

  void on_round(Context& ctx) override {
    if (ctx.round() == 0) {
      ctx.broadcast({static_cast<Word>(ctx.self())});
    }
    for (const Message& msg : ctx.inbox()) {
      heard_.push_back(msg.from);
      heard_words_.push_back(msg.words.at(0));
    }
    if (ctx.round() >= lifetime_) halt();
  }

  std::vector<NodeId> heard_;
  std::vector<Word> heard_words_;

 private:
  std::int64_t lifetime_;
};

/// Counts rounds; never sends; halts after `rounds` rounds.
class CountingProcess final : public Process {
 public:
  explicit CountingProcess(std::int64_t rounds) : limit_(rounds) {}
  void on_round(Context&) override {
    ++executed_;
    if (executed_ >= limit_) halt();
  }
  std::int64_t executed_ = 0;

 private:
  std::int64_t limit_;
};

/// Forwards received tokens along a path graph (relay chain).
class RelayProcess final : public Process {
 public:
  void on_round(Context& ctx) override {
    if (ctx.self() == 0 && ctx.round() == 0) {
      ctx.send(1, {Word{42}});
    }
    for (const Message& msg : ctx.inbox()) {
      received_ = true;
      // Forward to the next higher neighbor, if any.
      for (NodeId w : ctx.neighbors()) {
        if (w > msg.from) ctx.send(w, {msg.words.at(0)});
      }
    }
    if (ctx.round() > 10) halt();
  }
  bool received_ = false;
};

TEST(SyncNetwork, MessagesDeliveredNextRound) {
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(2); });
  net.run(5);
  for (NodeId v = 0; v < 3; ++v) {
    auto& p = net.process_as<GossipProcess>(v);
    // Everyone hears both other nodes exactly once.
    EXPECT_EQ(p.heard_.size(), 2u);
  }
}

TEST(SyncNetwork, InboxSortedBySender) {
  const graph::Graph g = graph::star(6);  // center 0
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(2); });
  net.run(4);
  auto& center = net.process_as<GossipProcess>(0);
  EXPECT_EQ(center.heard_, (std::vector<NodeId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(center.heard_words_, (std::vector<Word>{1, 2, 3, 4, 5}));
}

TEST(SyncNetwork, RunStopsWhenAllHalt) {
  const graph::Graph g = graph::empty(4);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<CountingProcess>(3); });
  const std::int64_t executed = net.run(100);
  EXPECT_EQ(executed, 3);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(net.process_as<CountingProcess>(v).executed_, 3);
  }
}

TEST(SyncNetwork, RunRespectsMaxRounds) {
  const graph::Graph g = graph::empty(2);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<CountingProcess>(1000); });
  EXPECT_EQ(net.run(7), 7);
}

TEST(SyncNetwork, RelayChainTakesOneRoundPerHop) {
  const graph::Graph g = graph::path(5);
  SyncNetwork net(g, 1);
  net.set_all_processes([](NodeId) { return std::make_unique<RelayProcess>(); });
  net.run(20);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_TRUE(net.process_as<RelayProcess>(v).received_) << "node " << v;
  }
}

TEST(SyncNetwork, MetricsCountMessagesAndWords) {
  const graph::Graph g = graph::complete(4);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(2); });
  net.run(5);
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.messages_sent, 4 * 3);  // each node broadcasts once
  EXPECT_EQ(m.words_sent, 4 * 3);     // one word each
  EXPECT_EQ(m.max_message_words, 1);
}

TEST(SyncNetwork, PerNodeRngIsDeterministic) {
  const graph::Graph g = graph::empty(3);

  class DrawProcess final : public Process {
   public:
    void on_round(Context& ctx) override {
      value_ = ctx.rng()();
      halt();
    }
    std::uint64_t value_ = 0;
  };

  SyncNetwork a(g, 99), b(g, 99), c(g, 100);
  for (auto* net : {&a, &b, &c}) {
    net->set_all_processes(
        [](NodeId) { return std::make_unique<DrawProcess>(); });
    net->run(2);
  }
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(a.process_as<DrawProcess>(v).value_,
              b.process_as<DrawProcess>(v).value_);
    EXPECT_NE(a.process_as<DrawProcess>(v).value_,
              c.process_as<DrawProcess>(v).value_);
  }
  // Distinct nodes see distinct streams.
  EXPECT_NE(a.process_as<DrawProcess>(0).value_,
            a.process_as<DrawProcess>(1).value_);
}

TEST(SyncNetwork, CrashedNodeStopsParticipating) {
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(3); });
  net.crash(2);
  net.run(5);
  EXPECT_TRUE(net.crashed(2));
  // Nodes 0 and 1 only hear each other (2 never ran).
  EXPECT_EQ(net.process_as<GossipProcess>(0).heard_,
            (std::vector<NodeId>{1}));
  EXPECT_EQ(net.process_as<GossipProcess>(1).heard_,
            (std::vector<NodeId>{0}));
}

TEST(SyncNetwork, ScheduledCrashDropsInFlightMessages) {
  const graph::Graph g = graph::path(2);

  // Sender emits one message per round; receiver records.
  class Emitter final : public Process {
   public:
    void on_round(Context& ctx) override {
      ctx.send(1, {static_cast<Word>(ctx.round())});
      if (ctx.round() >= 5) halt();
    }
  };
  class Sink final : public Process {
   public:
    void on_round(Context& ctx) override {
      for (const Message& msg : ctx.inbox()) {
        rounds_seen_.push_back(msg.words.at(0));
      }
      if (ctx.round() >= 6) halt();
    }
    std::vector<Word> rounds_seen_;
  };

  SyncNetwork net(g, 1);
  net.set_process(0, std::make_unique<Emitter>());
  net.set_process(1, std::make_unique<Sink>());
  net.schedule_crash(0, 3);  // crash before round 3 executes
  net.run(10);
  // Messages from rounds 0..2 arrive in rounds 1..3... but the round-2
  // message is dropped by the crash applied at the start of round 3.
  EXPECT_EQ(net.process_as<Sink>(1).rounds_seen_, (std::vector<Word>{0, 1}));
}

TEST(SyncNetwork, CrashedReceiverDropsInbox) {
  const graph::Graph g = graph::path(2);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(3); });
  net.crash(1);
  net.run(5);
  EXPECT_TRUE(net.process_as<GossipProcess>(0).heard_.empty());
}

TEST(SyncNetwork, UdgNetworkExposesDistances) {
  const std::vector<geom::Point> pts{{0, 0}, {0.3, 0.4}};
  const geom::UnitDiskGraph udg = geom::build_udg(pts, 1.0);

  class DistanceProbe final : public Process {
   public:
    void on_round(Context& ctx) override {
      has_ = ctx.has_distances();
      if (ctx.degree() > 0) d_ = ctx.distance_to(ctx.neighbors()[0]);
      halt();
    }
    bool has_ = false;
    double d_ = 0.0;
  };

  SyncNetwork net(udg, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<DistanceProbe>(); });
  net.run(2);
  EXPECT_TRUE(net.process_as<DistanceProbe>(0).has_);
  EXPECT_NEAR(net.process_as<DistanceProbe>(0).d_, 0.5, 1e-12);
}

TEST(SyncNetwork, PlainGraphHasNoDistances) {
  const graph::Graph g = graph::path(2);

  class Probe final : public Process {
   public:
    void on_round(Context& ctx) override {
      has_ = ctx.has_distances();
      halt();
    }
    bool has_ = true;
  };

  SyncNetwork net(g, 1);
  net.set_all_processes([](NodeId) { return std::make_unique<Probe>(); });
  net.run(2);
  EXPECT_FALSE(net.process_as<Probe>(0).has_);
}

TEST(SyncNetwork, ContextExposesGlobals) {
  util::Rng rng(5);
  const graph::Graph g = graph::gnp(30, 0.2, rng);

  class GlobalsProbe final : public Process {
   public:
    void on_round(Context& ctx) override {
      n_ = ctx.n();
      delta_ = ctx.max_degree();
      deg_ = ctx.degree();
      halt();
    }
    NodeId n_ = 0, delta_ = 0, deg_ = 0;
  };

  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GlobalsProbe>(); });
  net.run(2);
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& p = net.process_as<GlobalsProbe>(v);
    EXPECT_EQ(p.n_, g.n());
    EXPECT_EQ(p.delta_, g.max_degree());
    EXPECT_EQ(p.deg_, g.degree(v));
  }
}


TEST(SyncNetwork, MessageLossDropsApproximatelyP) {
  const graph::Graph g = graph::complete(20);
  SyncNetwork net(g, 1);
  net.set_message_loss(0.3, 99);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(2); });
  net.run(4);
  std::int64_t heard = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    heard += static_cast<std::int64_t>(
        net.process_as<GossipProcess>(v).heard_.size());
  }
  const std::int64_t sent = 20 * 19;
  EXPECT_EQ(heard + net.messages_lost(), sent);
  EXPECT_GT(net.messages_lost(), sent / 6);  // ~30% +- noise
  EXPECT_LT(net.messages_lost(), sent / 2);
}

TEST(SyncNetwork, ZeroLossLosesNothing) {
  const graph::Graph g = graph::complete(5);
  SyncNetwork net(g, 1);
  net.set_message_loss(0.0);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(2); });
  net.run(4);
  EXPECT_EQ(net.messages_lost(), 0);
}

TEST(SyncNetwork, ScheduleCrashInThePastIsANoOp) {
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(10); });
  net.run(5);                // now round_ == 5
  net.schedule_crash(0, 3);  // in the past: silently dropped
  net.run(10);
  EXPECT_FALSE(net.crashed(0));
  EXPECT_EQ(net.live_count(), 3);
}

TEST(SyncNetwork, ScheduleCrashOnCrashedNodeIsANoOp) {
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<GossipProcess>(10); });
  net.crash(2);
  net.schedule_crash(2, 4);  // already dead: dropped, not double-applied
  net.crash(2);              // idempotent direct crash
  net.run(12);
  EXPECT_TRUE(net.crashed(2));
  EXPECT_EQ(net.live_count(), 2);
}

TEST(SyncNetwork, RecoveryRestartsWithFreshProcess) {
  const graph::Graph g = graph::complete(3);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<CountingProcess>(40); });
  net.schedule_crash(1, 5);
  net.schedule_recovery(1, 20, std::make_unique<CountingProcess>(40));
  net.run(40);
  EXPECT_FALSE(net.crashed(1));
  // The fresh process only ran rounds 20..39.
  EXPECT_EQ(net.process_as<CountingProcess>(1).executed_, 20);
  EXPECT_EQ(net.process_as<CountingProcess>(0).executed_, 40);
}

TEST(SyncNetwork, PendingRecoveryKeepsTheRunAlive) {
  // Both nodes halt early; a scheduled rejoin later must still execute even
  // though no live process is running in between.
  const graph::Graph g = graph::path(2);
  SyncNetwork net(g, 1);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<CountingProcess>(2); });
  net.schedule_crash(1, 3);
  net.schedule_recovery(1, 8, std::make_unique<CountingProcess>(4));
  const std::int64_t rounds = net.run(30);
  EXPECT_GE(rounds, 12);  // reached round 8 + 4 executions of the rejoin
  EXPECT_EQ(net.process_as<CountingProcess>(1).executed_, 4);
}

TEST(SyncNetwork, LossIsDeterministicPerSeed) {
  const graph::Graph g = graph::complete(10);
  auto run_once = [&](std::uint64_t loss_seed) {
    SyncNetwork net(g, 1);
    net.set_message_loss(0.5, loss_seed);
    net.set_all_processes(
        [](NodeId) { return std::make_unique<GossipProcess>(2); });
    net.run(4);
    return net.messages_lost();
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

}  // namespace
}  // namespace ftc::sim
