#include "sim/message.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ftc::sim {
namespace {

TEST(FixedPoint, RoundTripExactForRepresentable) {
  for (double v : {0.0, 0.5, 0.25, 1.0, 123.0, 0.0009765625}) {
    EXPECT_DOUBLE_EQ(decode_fixed(encode_fixed(v)), v);
  }
}

TEST(FixedPoint, QuantizationErrorBounded) {
  for (double v : {0.1, 0.3333333333, 0.7182818, 1e-7, 0.9999999}) {
    const double err = std::abs(decode_fixed(encode_fixed(v)) - v);
    EXPECT_LE(err, 0.5 / kFixedPointScale);
  }
}

TEST(FixedPoint, NegativeValues) {
  EXPECT_DOUBLE_EQ(decode_fixed(encode_fixed(-0.5)), -0.5);
  const double err = std::abs(decode_fixed(encode_fixed(-0.123)) + 0.123);
  EXPECT_LE(err, 0.5 / kFixedPointScale);
}

TEST(FixedPoint, MonotoneNonDecreasing) {
  double prev = decode_fixed(encode_fixed(0.0));
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i) / 1000.0;
    const double dq = decode_fixed(encode_fixed(v));
    EXPECT_GE(dq, prev);
    prev = dq;
  }
}

TEST(FixedPoint, IdempotentQuantization) {
  for (double v : {0.1, 0.77, 3.14159}) {
    const double once = decode_fixed(encode_fixed(v));
    EXPECT_DOUBLE_EQ(decode_fixed(encode_fixed(once)), once);
  }
}

}  // namespace
}  // namespace ftc::sim
