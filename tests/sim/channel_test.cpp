#include "sim/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "sim/fault.h"
#include "sim/network.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

// ------------------------------------------------------------- validation

TEST(ChannelOptions, DefaultIsCleanAndValid) {
  ChannelOptions o;
  EXPECT_FALSE(o.impaired());
  EXPECT_NO_THROW(o.validate());
}

TEST(ChannelOptions, RejectsOutOfRangeProbabilities) {
  ChannelOptions o;
  o.loss = -0.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.loss = 1.0;  // drop probabilities must stay < 1
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.loss = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.loss = 0.999;
  EXPECT_NO_THROW(o.validate());

  o = ChannelOptions{};
  o.duplicate = 1.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.duplicate = 1.0;  // non-drop probabilities may reach 1
  EXPECT_NO_THROW(o.validate());

  o = ChannelOptions{};
  o.reorder = -0.25;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = ChannelOptions{};
  o.burst_loss = 1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(ChannelOptions, RejectsInertBurstExit) {
  ChannelOptions o;
  o.burst_loss = 0.8;
  o.p_enter_burst = 0.1;
  o.p_exit_burst = 0.0;  // a burst must be able to end
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.p_exit_burst = 0.2;
  EXPECT_NO_THROW(o.validate());
}

TEST(ChannelOptions, RejectsNonPositiveReorderDelay) {
  ChannelOptions o;
  o.reorder = 0.2;
  o.max_reorder_delay = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.max_reorder_delay = 1;
  EXPECT_NO_THROW(o.validate());
}

TEST(Channel, SetOptionsValidates) {
  Channel ch;
  ChannelOptions o;
  o.loss = 2.0;
  EXPECT_THROW(ch.set_options(o, 0), std::invalid_argument);
}

// ------------------------------------------------------------ determinism

TEST(Channel, VerdictIsPureInLinkAndRound) {
  ChannelOptions o;
  o.loss = 0.3;
  o.duplicate = 0.2;
  o.reorder = 0.2;
  o.seed = 77;

  // Query in two different orders; every verdict must match.
  Channel a(o);
  Channel b(o);
  std::vector<Channel::Fate> fwd;
  for (std::int64_t r = 0; r < 50; ++r) {
    for (NodeId u = 0; u < 4; ++u) {
      for (NodeId v = 0; v < 4; ++v) {
        if (u != v) fwd.push_back(a.decide(u, v, r));
      }
    }
  }
  std::vector<Channel::Fate> rev;
  for (std::int64_t r = 49; r >= 0; --r) {
    for (NodeId u = 3; u >= 0; --u) {
      for (NodeId v = 3; v >= 0; --v) {
        if (u != v) rev.push_back(b.decide(u, v, r));
      }
    }
  }
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    const auto& x = fwd[i];
    const auto& y = rev[rev.size() - 1 - i];
    EXPECT_EQ(x.dropped, y.dropped);
    EXPECT_EQ(x.delay, y.delay);
    EXPECT_EQ(x.duplicate, y.duplicate);
    EXPECT_EQ(x.dup_delay, y.dup_delay);
  }
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(Channel, SeedChangesTheVerdictStream) {
  ChannelOptions o;
  o.loss = 0.5;
  o.seed = 1;
  Channel a(o);
  o.seed = 2;
  Channel b(o);
  int differing = 0;
  for (std::int64_t r = 0; r < 200; ++r) {
    if (a.decide(0, 1, r).dropped != b.decide(0, 1, r).dropped) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// -------------------------------------------------------------- behavior

TEST(Channel, LossRateIsApproximatelyHonored) {
  ChannelOptions o;
  o.loss = 0.3;
  o.seed = 42;
  Channel ch(o);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    (void)ch.decide(i % 7, (i + 1) % 7, i);
  }
  const double rate =
      static_cast<double>(ch.counters().dropped) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Channel, AsymmetryMakesDirectionsDiffer) {
  ChannelOptions o;
  o.loss = 0.4;
  o.asymmetry = 1.0;
  o.seed = 5;
  Channel ch(o);
  int fwd = 0;
  int rev = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    if (ch.decide(0, 1, i).dropped) ++fwd;
    if (ch.decide(1, 0, i).dropped) ++rev;
  }
  // With a = 1 the two directions get independent stable factors in
  // [0, 2] * loss; equality within noise would mean asymmetry is dead.
  EXPECT_GT(std::abs(fwd - rev), trials / 50);
}

TEST(Channel, DuplicateArrivesStrictlyLater) {
  ChannelOptions o;
  o.duplicate = 1.0;
  o.reorder = 0.5;
  o.max_reorder_delay = 3;
  Channel ch(o);
  for (std::int64_t r = 0; r < 200; ++r) {
    const auto fate = ch.decide(1, 2, r);
    ASSERT_FALSE(fate.dropped);
    ASSERT_TRUE(fate.duplicate);
    EXPECT_GT(fate.dup_delay, fate.delay);
    EXPECT_LE(fate.dup_delay, fate.delay + o.max_reorder_delay);
    if (fate.delay > 0) EXPECT_LE(fate.delay, o.max_reorder_delay);
  }
  EXPECT_EQ(ch.counters().duplicated, 200);
}

TEST(Channel, BurstsDropInRuns) {
  ChannelOptions o;
  o.burst_loss = 0.999;
  o.p_enter_burst = 0.08;
  o.p_exit_burst = 0.25;
  o.seed = 9;
  Channel ch(o);
  // With near-total loss inside bursts the drop pattern must contain runs
  // of consecutive drops far beyond what iid loss at the same average could
  // produce on a fair coin.
  int longest_run = 0;
  int run = 0;
  int dropped = 0;
  const int rounds = 4000;
  for (int r = 0; r < rounds; ++r) {
    if (ch.decide(3, 4, r).dropped) {
      ++dropped;
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(dropped, rounds / 25);       // bursts actually fire
  EXPECT_LT(dropped, (rounds * 2) / 3);  // good state actually delivers
  EXPECT_GE(longest_run, 6);             // and drops cluster
}

TEST(Channel, EpochRestartsBurstChains) {
  ChannelOptions o;
  o.burst_loss = 0.999;
  o.p_enter_burst = 0.5;
  o.p_exit_burst = 0.1;
  o.seed = 123;
  Channel a(o);
  Channel b(o);
  // Advance a's chain far, then re-set the same options at an epoch: its
  // verdicts from the epoch on must match a fresh channel with that epoch.
  for (int r = 0; r < 100; ++r) (void)a.decide(0, 1, r);
  a.set_options(o, 100);
  b.set_options(o, 100);
  for (int r = 100; r < 160; ++r) {
    EXPECT_EQ(a.decide(0, 1, r).dropped, b.decide(0, 1, r).dropped)
        << "round " << r;
  }
}

// ------------------------------------------- network-level channel effects

/// Broadcasts words 0..30 (word = round), then keeps listening long enough
/// for every channel-delayed copy to land before halting.
class ChatterProcess final : public Process {
 public:
  void on_round(Context& ctx) override {
    for (const Message& msg : ctx.inbox()) {
      heard.push_back({ctx.round(), msg.from, msg.words.at(0)});
    }
    if (ctx.round() <= 30) ctx.broadcast({static_cast<Word>(ctx.round())});
    if (ctx.round() >= 38) halt();
  }
  struct Heard {
    std::int64_t round;
    NodeId from;
    Word word;
    friend bool operator==(const Heard&, const Heard&) = default;
  };
  std::vector<Heard> heard;
};

TEST(SyncNetworkChannel, DuplicationDeliversExtraCopiesLater) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 1);
  ChannelOptions o;
  o.duplicate = 1.0;
  o.max_reorder_delay = 2;
  net.set_channel(o);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(); });
  net.run(40);
  const auto& p = net.process_as<ChatterProcess>(0);
  // Every original delivery eventually gets a second copy; dup copies of
  // word w arrive strictly after round w + 1.
  std::int64_t copies = 0;
  for (const auto& h : p.heard) {
    EXPECT_GE(h.round, h.word + 1);
    if (h.round > h.word + 1) ++copies;
  }
  EXPECT_GT(copies, 10);
  EXPECT_GT(net.channel().counters().duplicated, 0);
  EXPECT_EQ(net.channel().counters().dropped, 0);
}

TEST(SyncNetworkChannel, ReorderingDelaysButNeverLoses) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 1);
  ChannelOptions o;
  o.reorder = 0.6;
  o.max_reorder_delay = 3;
  net.set_channel(o);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(); });
  net.run(45);
  const auto& p = net.process_as<ChatterProcess>(1);
  // Each word 0..30 sent by node 0 arrives exactly once, within the bound.
  std::vector<int> seen(31, 0);
  for (const auto& h : p.heard) {
    ASSERT_GE(h.word, 0);
    if (h.word <= 30) {
      ++seen[static_cast<std::size_t>(h.word)];
      EXPECT_GE(h.round, h.word + 1);
      EXPECT_LE(h.round, h.word + 1 + o.max_reorder_delay);
    }
  }
  for (int w = 0; w <= 30; ++w) EXPECT_EQ(seen[w], 1) << "word " << w;
  EXPECT_GT(net.channel().counters().reordered, 0);
}

TEST(SyncNetworkChannel, CrashPurgesDelayedDeliveries) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 1);
  ChannelOptions o;
  o.reorder = 1.0;
  o.duplicate = 1.0;
  o.max_reorder_delay = 3;
  net.set_channel(o);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(); });
  net.schedule_crash(0, 10);
  net.run(40);
  // Nothing sent by node 0 may arrive after its crash round: in-flight and
  // channel-delayed messages die with the sender.
  const auto& p = net.process_as<ChatterProcess>(1);
  for (const auto& h : p.heard) {
    EXPECT_LE(h.round, 10) << "stale delivery from the crashed sender";
  }
}

// ------------------------------------------------ FaultPlan link families

TEST(FaultPlanLinks, FactoriesRejectBadRates) {
  EXPECT_THROW(FaultPlan::lossy_links(-0.1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::lossy_links(1.0), std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::lossy_links(std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(FaultPlan::asymmetric_links(0.1, 1.5), std::invalid_argument);
  EXPECT_THROW(FaultPlan::bursty_links(1.0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(FaultPlan::bursty_links(0.5, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(FaultPlan::duplicating_links(1.1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::reordering_links(0.2, 0), std::invalid_argument);
  EXPECT_NO_THROW(FaultPlan::lossy_links(0.0));
  EXPECT_NO_THROW(FaultPlan::reordering_links(1.0, 4));
}

TEST(FaultPlanLinks, CompilesWindowsIntoChannelEvents) {
  const auto plan = FaultPlan::lossy_links(0.2, 5, 15)
                        .then(FaultPlan::duplicating_links(0.1, 10, 20));
  EXPECT_TRUE(plan.has_link_faults());
  const auto schedule = compile_channel_schedule(plan, 40, 99);
  // Windows: [5,10) loss only, [10,15) loss + dup, [15,20) dup only,
  // [20,..) clean.
  ASSERT_EQ(schedule.size(), 4u);
  EXPECT_EQ(schedule[0].round, 5);
  EXPECT_NEAR(schedule[0].options.loss, 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(schedule[0].options.duplicate, 0.0);
  EXPECT_EQ(schedule[1].round, 10);
  EXPECT_NEAR(schedule[1].options.loss, 0.2, 1e-12);
  EXPECT_NEAR(schedule[1].options.duplicate, 0.1, 1e-12);
  EXPECT_EQ(schedule[2].round, 15);
  EXPECT_DOUBLE_EQ(schedule[2].options.loss, 0.0);
  EXPECT_NEAR(schedule[2].options.duplicate, 0.1, 1e-12);
  EXPECT_EQ(schedule[3].round, 20);
  EXPECT_FALSE(schedule[3].options.impaired());
}

TEST(FaultPlanLinks, OverlappingLossCombinesIndependently) {
  const auto plan =
      FaultPlan::lossy_links(0.5, 0, 10).then(FaultPlan::lossy_links(0.5, 0, 10));
  const auto schedule = compile_channel_schedule(plan, 20, 1);
  ASSERT_GE(schedule.size(), 1u);
  // 1 - (1 - .5)(1 - .5) = .75
  EXPECT_NEAR(schedule[0].options.loss, 0.75, 1e-12);
}

TEST(FaultPlanLinks, EmptyWindowIsLegalAndInert) {
  const auto plan = FaultPlan::lossy_links(0.3, 10, 10);
  EXPECT_TRUE(plan.has_link_faults());
  EXPECT_TRUE(compile_channel_schedule(plan, 40, 1).empty());
}

TEST(FaultPlanLinks, CrashFactoriesRejectDegenerateInputs) {
  EXPECT_THROW(FaultPlan::crashes_at({}), std::invalid_argument);
  EXPECT_THROW(FaultPlan::targeted_by_degree(0, 5), std::invalid_argument);
  EXPECT_THROW(FaultPlan::iid_crashes(1.5), std::invalid_argument);
  EXPECT_THROW(FaultPlan::churn(0.1, 3, 2), std::invalid_argument);
  EXPECT_THROW(FaultPlan::churn(0.1, 0, 2), std::invalid_argument);
  EXPECT_THROW(FaultPlan::region({0.0, 0.0}, -1.0, 5), std::invalid_argument);
}

TEST(FaultPlanLinks, InjectorInstallsChannelSchedule) {
  const graph::Graph g = graph::complete(4);
  SyncNetwork net(g, 7);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<ChatterProcess>(); });
  FaultInjector injector(FaultPlan::lossy_links(0.9, 2, 12), 3);
  injector.install(net, 30);
  ASSERT_FALSE(injector.channel_schedule().empty());
  net.run(40);
  EXPECT_GT(net.messages_lost(), 0);
  // The window closed at round 12; the channel is clean again.
  EXPECT_FALSE(net.channel().impaired());
}

TEST(FaultPlanLinks, AsyncInstallRejectsLinkFaults) {
  const graph::Graph g = graph::complete(3);
  AsyncNetwork net(g, 1);
  FaultInjector injector(FaultPlan::lossy_links(0.1), 3);
  EXPECT_THROW(injector.install(net, 20), std::invalid_argument);
}

}  // namespace
}  // namespace ftc::sim
