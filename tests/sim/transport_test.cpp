#include "sim/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "sim/channel.h"
#include "sim/network.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

/// Sends `total` sequenced payloads to every neighbor through the reliable
/// transport (one new payload per round) and records everything delivered.
class PumpProcess final : public Process {
 public:
  explicit PumpProcess(int total, bool sender = true)
      : total_(total), sender_(sender) {}

  void on_round(Context& ctx) override {
    for (const auto& d : transport_.receive(ctx)) {
      got_.push_back(d.words.at(0));
      from_.push_back(d.from);
    }
    if (sender_ && sent_ < total_) {
      transport_.broadcast(ctx, {static_cast<Word>(sent_)});
      ++sent_;
    }
    transport_.flush(ctx);
  }

  [[nodiscard]] const ReliableTransport& transport() const noexcept {
    return transport_;
  }

  std::vector<Word> got_;
  std::vector<NodeId> from_;

 private:
  ReliableTransport transport_;
  int total_ = 0;
  bool sender_ = true;
  int sent_ = 0;
};

/// Expected in-order stream 0..total-1.
std::vector<Word> iota_words(int total) {
  std::vector<Word> v;
  for (int i = 0; i < total; ++i) v.push_back(i);
  return v;
}

TEST(ReliableTransport, CleanChannelDeliversInOrderWithoutRetransmission) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 1);
  static constexpr int kTotal = 12;
  net.set_all_processes(
      [](NodeId v) { return std::make_unique<PumpProcess>(kTotal, v == 0); });
  net.run(3 * kTotal + 10);

  const auto& receiver = net.process_as<PumpProcess>(1);
  EXPECT_EQ(receiver.got_, iota_words(kTotal));
  EXPECT_EQ(receiver.transport().duplicates_suppressed(), 0);
  const auto& sender = net.process_as<PumpProcess>(0);
  EXPECT_EQ(sender.transport().retransmissions(), 0);
  EXPECT_TRUE(sender.transport().idle());
  EXPECT_EQ(sender.transport().backlog(), 0);
}

TEST(ReliableTransport, ExactlyOnceInOrderUnderHeavyImpairment) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 42);
  ChannelOptions o;
  o.loss = 0.3;
  o.duplicate = 0.3;
  o.reorder = 0.3;
  o.max_reorder_delay = 3;
  o.seed = 1234;
  net.set_channel(o);
  static constexpr int kTotal = 30;
  net.set_all_processes(
      [](NodeId v) { return std::make_unique<PumpProcess>(kTotal, v == 0); });
  net.run(900);

  const auto& receiver = net.process_as<PumpProcess>(1);
  // The channel dropped, duplicated, and reordered frames — the application
  // stream is still exactly 0..N-1, once each, in order.
  EXPECT_EQ(receiver.got_, iota_words(kTotal));
  const auto& sender = net.process_as<PumpProcess>(0);
  EXPECT_GT(sender.transport().retransmissions(), 0);
  EXPECT_TRUE(sender.transport().idle());
}

TEST(ReliableTransport, BroadcastReachesEveryNeighborInOrder) {
  const graph::Graph g = graph::star(5);  // center 0
  SyncNetwork net(g, 7);
  net.set_message_loss(0.25, 99);
  static constexpr int kTotal = 8;
  net.set_all_processes(
      [](NodeId v) { return std::make_unique<PumpProcess>(kTotal, v == 0); });
  net.run(600);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    const auto& p = net.process_as<PumpProcess>(leaf);
    EXPECT_EQ(p.got_, iota_words(kTotal)) << "leaf " << leaf;
    EXPECT_EQ(p.from_, std::vector<NodeId>(kTotal, 0)) << "leaf " << leaf;
  }
}

TEST(ReliableTransport, BidirectionalTrafficPiggybacksAcks) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 11);
  net.set_message_loss(0.2, 5);
  static constexpr int kTotal = 15;
  net.set_all_processes(
      [](NodeId) { return std::make_unique<PumpProcess>(kTotal, true); });
  net.run(700);
  for (NodeId v = 0; v < 2; ++v) {
    const auto& p = net.process_as<PumpProcess>(v);
    EXPECT_EQ(p.got_, iota_words(kTotal)) << "node " << v;
    EXPECT_TRUE(p.transport().idle()) << "node " << v;
  }
}

struct TransportSnapshot {
  std::vector<std::vector<Word>> got;
  std::vector<std::vector<NodeId>> from;
  std::vector<std::int64_t> frames, retrans, dups, delivered;
  Metrics metrics;

  friend bool operator==(const TransportSnapshot&,
                         const TransportSnapshot&) = default;
};

TransportSnapshot run_crash_during_retransmission(int threads) {
  const graph::Graph g = graph::complete(6);
  SyncNetwork net(g, 21);
  net.set_threads(threads);
  net.set_parallel_grain(0);  // small n: force the pool, not the fallback
  ChannelOptions o;
  o.loss = 0.35;
  o.duplicate = 0.2;
  o.reorder = 0.2;
  o.max_reorder_delay = 2;
  o.seed = 4242;
  net.set_channel(o);
  net.set_all_processes(
      [](NodeId) { return std::make_unique<PumpProcess>(10, true); });
  // Node 2 dies while its peers still have unacked payloads in flight for
  // it — their retransmission state must die deterministically too.
  net.schedule_crash(2, 6);
  net.run(80);

  TransportSnapshot snap;
  for (NodeId v = 0; v < 6; ++v) {
    if (net.crashed(v)) {
      snap.got.emplace_back();
      snap.from.emplace_back();
      snap.frames.push_back(-1);
      snap.retrans.push_back(-1);
      snap.dups.push_back(-1);
      snap.delivered.push_back(-1);
      continue;
    }
    const auto& p = net.process_as<PumpProcess>(v);
    snap.got.push_back(p.got_);
    snap.from.push_back(p.from_);
    snap.frames.push_back(p.transport().frames_sent());
    snap.retrans.push_back(p.transport().retransmissions());
    snap.dups.push_back(p.transport().duplicates_suppressed());
    snap.delivered.push_back(p.transport().delivered());
  }
  snap.metrics = net.metrics();
  return snap;
}

TEST(ReliableTransport, CrashDuringRetransmissionIsDeterministicAcrossWidths) {
  const TransportSnapshot serial = run_crash_during_retransmission(1);
  EXPECT_GT(serial.metrics.messages_sent, 0);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(run_crash_during_retransmission(threads), serial)
        << "threads=" << threads;
  }
}

TEST(ReliableTransport, SuppressesChannelDuplicates) {
  const graph::Graph g = graph::complete(2);
  SyncNetwork net(g, 3);
  ChannelOptions o;
  o.duplicate = 1.0;  // every frame arrives twice
  o.max_reorder_delay = 2;
  net.set_channel(o);
  static constexpr int kTotal = 10;
  net.set_all_processes(
      [](NodeId v) { return std::make_unique<PumpProcess>(kTotal, v == 0); });
  net.run(200);
  const auto& receiver = net.process_as<PumpProcess>(1);
  EXPECT_EQ(receiver.got_, iota_words(kTotal));
  EXPECT_GT(receiver.transport().duplicates_suppressed(), 0);
}

}  // namespace
}  // namespace ftc::sim
