// LARGE-tier scale tests (separate ftc_large_tests binary, ctest label
// LARGE): the determinism and equivalence contracts of the parallel round
// engine, asserted at 1e5 nodes — the scale where the shard-owned delivery
// actually spans many shards per width and the small-n fallback is out of
// the picture. Filter with `ctest -L LARGE` (or exclude with -LE LARGE).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/udg.h"
#include "graph/graph.h"
#include "sim/channel.h"
#include "sim/message.h"
#include "sim/network.h"
#include "util/rng.h"

namespace ftc::sim {
namespace {

using graph::NodeId;

constexpr NodeId kNodes = 100'000;
constexpr double kDegree = 12.0;

/// Flood workload with enough state mixing that any divergence in message
/// order, loss verdicts, or crash timing changes the digest.
class MixProcess final : public Process {
 public:
  explicit MixProcess(std::int64_t rounds) : rounds_(rounds) {}

  void on_round(Context& ctx) override {
    std::int64_t acc = 0;
    for (const Message& msg : ctx.inbox()) {
      acc += msg.words[0] * 31 + msg.from;
    }
    state_ = state_ * 6364136223846793005ULL +
             static_cast<std::uint64_t>(acc) + ctx.rng()();
    ctx.broadcast({static_cast<Word>(state_ & 0xFFFFF)});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  std::uint64_t state_ = 1;

 private:
  std::int64_t rounds_;
};

const geom::UnitDiskGraph& topology() {
  static const geom::UnitDiskGraph udg = [] {
    util::Rng rng(4242);
    return geom::uniform_udg_with_degree(kNodes, kDegree, rng);
  }();
  return udg;
}

std::uint64_t run_digest(int threads, const ChannelOptions* channel,
                         bool with_churn) {
  const geom::UnitDiskGraph& udg = topology();
  SyncNetwork net(udg, 99);
  net.set_threads(threads);
  if (channel != nullptr) net.set_channel(*channel);
  static constexpr std::int64_t kRounds = 12;
  net.set_all_processes(
      [](NodeId) { return std::make_unique<MixProcess>(kRounds); });
  if (with_churn) {
    // Crashes with traffic in flight (exercises the prev-generation
    // transfer-list purge at real scale) plus a mid-run recovery.
    for (NodeId v = 0; v < 40; ++v) {
      net.schedule_crash(v * 2'000 + 17, 2 + v % 7);
    }
    net.schedule_recovery(17, 9, std::make_unique<MixProcess>(kRounds));
  }
  net.run(kRounds + 2);

  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId v = 0; v < udg.n(); ++v) {
    h ^= net.crashed(v) ? 0x9E3779B97F4A7C15ULL
                        : net.process_as<MixProcess>(v).state_;
    h *= 1099511628211ULL;
  }
  h ^= static_cast<std::uint64_t>(net.metrics().messages_sent);
  h *= 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(net.metrics().words_sent);
  h *= 1099511628211ULL;
  h ^= static_cast<std::uint64_t>(net.messages_lost());
  return h;
}

TEST(LargeScale, CleanFloodIdenticalAtEveryWidth) {
  const std::uint64_t serial = run_digest(1, nullptr, false);
  for (const int threads : {4, 8, 16}) {
    EXPECT_EQ(run_digest(threads, nullptr, false), serial)
        << "threads=" << threads;
  }
}

TEST(LargeScale, ChurnAndLossIdenticalAtEveryWidth) {
  ChannelOptions o;
  o.loss = 0.1;
  o.seed = 777;
  const std::uint64_t serial = run_digest(1, &o, true);
  for (const int threads : {4, 8, 16}) {
    EXPECT_EQ(run_digest(threads, &o, true), serial) << "threads=" << threads;
  }
}

TEST(LargeScale, ImpairedChannelIdenticalAtEveryWidth) {
  // Duplication + reordering at scale: the delayed-delivery buckets span
  // every destination shard and must merge identically at every width.
  ChannelOptions o;
  o.loss = 0.05;
  o.duplicate = 0.05;
  o.reorder = 0.05;
  o.max_reorder_delay = 3;
  o.seed = 31337;
  const std::uint64_t serial = run_digest(1, &o, false);
  for (const int threads : {4, 8, 16}) {
    EXPECT_EQ(run_digest(threads, &o, false), serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ftc::sim
