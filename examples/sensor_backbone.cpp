// Sensor-network backbone under battery exhaustion — the paper's
// motivating scenario (Section 1): sensor nodes die over time; a k-fold
// dominating set keeps the monitoring backbone alive far longer than a
// plain dominating set.
//
//   ./sensor_backbone [--n=2000] [--days=30] [--daily-death=0.05]
//
// Simulation: deploy n sensors, build the leanest k-fold backbone the
// library offers (the centralized greedy constructor — the constructor is
// orthogonal to the maintenance story; a lean backbone makes the
// redundancy effect visible), then kill a random fraction of ALL nodes
// each "day". Whenever fewer than 95% of surviving sensors can reach a
// live backbone node, the network re-clusters — an energy-expensive event.
// Fewer rebuilds = the fault-tolerance payoff of larger k.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/baseline/greedy.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ftc;

std::vector<std::uint8_t> build_backbone(const graph::Graph& g,
                                         const std::vector<std::uint8_t>& dead,
                                         std::int32_t k) {
  // Demands only for live nodes; dead nodes neither need nor provide
  // coverage, so we solve on the surviving subgraph.
  std::vector<graph::NodeId> dead_list;
  for (std::size_t v = 0; v < dead.size(); ++v) {
    if (dead[v]) dead_list.push_back(static_cast<graph::NodeId>(v));
  }
  const graph::Graph live = g.without_nodes(dead_list);
  auto demands = domination::clamp_demands(
      live, domination::uniform_demands(live.n(), k));
  for (graph::NodeId v : dead_list) {
    demands[static_cast<std::size_t>(v)] = 0;
  }
  const auto greedy = algo::greedy_kmds(live, demands);
  auto members = domination::to_membership(g, greedy.set);
  for (std::size_t v = 0; v < dead.size(); ++v) {
    if (dead[v]) members[v] = 0;
  }
  return members;
}

struct RunSummary {
  std::size_t initial_size = 0;
  int rebuilds = 0;
  std::vector<double> daily_coverage;
};

RunSummary simulate(const geom::UnitDiskGraph& udg, std::int32_t k, int days,
                    double daily_death, std::uint64_t seed) {
  RunSummary run;
  util::Rng death_rng(seed * 7919 + static_cast<std::uint64_t>(k));
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(udg.n()), 0);

  auto backbone = build_backbone(udg.graph, dead, k);
  for (std::uint8_t b : backbone) run.initial_size += b;

  auto coverage = [&]() {
    std::vector<std::uint8_t> live_backbone(dead.size(), 0);
    for (std::size_t v = 0; v < dead.size(); ++v) {
      live_backbone[v] = backbone[v] && !dead[v];
    }
    const auto cover =
        domination::closed_coverage_counts(udg.graph, live_backbone);
    std::int64_t served = 0, want = 0;
    for (graph::NodeId v = 0; v < udg.n(); ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (dead[i] || backbone[i]) continue;
      ++want;
      if (cover[i] >= 1) ++served;
    }
    return want == 0
               ? 1.0
               : static_cast<double>(served) / static_cast<double>(want);
  };

  for (int day = 1; day <= days; ++day) {
    for (std::size_t v = 0; v < dead.size(); ++v) {
      if (!dead[v] && death_rng.bernoulli(daily_death)) dead[v] = 1;
    }
    double frac = coverage();
    if (frac < 0.95) {
      ++run.rebuilds;
      backbone = build_backbone(udg.graph, dead, k);
      frac = coverage();
    }
    run.daily_coverage.push_back(frac);
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 2000));
  const int days = static_cast<int>(args.get_int("days", 30));
  const double daily_death = args.get_double("daily-death", 0.05);
  const std::uint64_t seed = args.get_u64("seed", 3);

  util::Rng rng(seed);
  const auto udg = geom::uniform_udg_with_degree(n, 16.0, rng);
  std::printf(
      "sensor deployment: n=%d, radio edges=%zu, %.0f%% of nodes die per "
      "day, %d days\nre-clustering triggered when backbone coverage of "
      "survivors drops below 95%%\n\n",
      udg.n(), udg.graph.m(), 100.0 * daily_death, days);

  for (std::int32_t k : {1, 2, 3, 4}) {
    const auto run = simulate(udg, k, days, daily_death, seed);
    std::printf("k=%d backbone (initial size %4zu): ", k, run.initial_size);
    // Report days clamp to the simulated horizon (short --days runs).
    auto at_day = [&](int day) {
      const int idx = std::min(day, days) - 1;
      return 100.0 * run.daily_coverage[static_cast<std::size_t>(idx)];
    };
    std::printf("coverage on day %d/%d/%d: %5.1f%% %5.1f%% %5.1f%%,  ",
                std::min(5, days), std::min(15, days), days, at_day(5),
                at_day(15), at_day(days));
    std::printf("rebuilds: %d\n", run.rebuilds);
  }

  std::printf(
      "\nLarger k costs a proportionally larger backbone but needs far\n"
      "fewer energy-hungry re-clustering events - the redundancy argument\n"
      "of the paper's introduction, quantified.\n");
  return 0;
}
