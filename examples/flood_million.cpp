// Million-node flood: the round engine at sensor-network scale.
//
// Builds a uniform unit disk graph (default one million nodes at average
// degree 12 — the canonical dense sensor deployment of the paper's
// experiments), reports the topology's memory footprint in raw CSR and
// varint-packed form, then drives a broadcast flood through the
// shard-owned parallel engine and prints per-round wall time and
// throughput. On commodity hardware a full 1M-node round — every live
// node folding its inbox and broadcasting to ~12 neighbors — completes in
// well under a second.
//
//   flood_million [--n=1000000] [--degree=12] [--rounds=5] [--threads=0]
//
// --threads=0 uses the hardware thread count.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "geom/udg.h"
#include "graph/graph.h"
#include "graph/packed.h"
#include "sim/message.h"
#include "sim/network.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace ftc;
using graph::NodeId;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double peak_rss_mb() {
#if defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#elif defined(__unix__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
  return 0.0;
#endif
}

/// Flood wave: node 0 seeds a token; everyone re-broadcasts the maximum
/// token seen, so the wave sweeps the diameter while every node chatters
/// every round — the engine's worst case, not an idle ring.
class WaveProcess final : public sim::Process {
 public:
  WaveProcess(NodeId id, std::int64_t rounds) : rounds_(rounds) {
    token_ = (id == 0) ? 1 : 0;
  }

  void on_round(sim::Context& ctx) override {
    for (const sim::Message& msg : ctx.inbox()) {
      token_ = std::max(token_, msg.words[0]);
    }
    ctx.broadcast({token_});
    if (ctx.round() + 1 >= rounds_) halt();
  }

  sim::Word token_ = 0;

 private:
  std::int64_t rounds_;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 1'000'000));
  const double degree = args.get_double("degree", 12.0);
  const std::int64_t rounds = args.get_int("rounds", 5);
  int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads <= 0) threads = util::ThreadPool::hardware_threads();

  std::cout << "flood_million: n=" << n << " target_degree=" << degree
            << " rounds=" << rounds << " threads=" << threads << "\n";

  double t0 = now_seconds();
  util::Rng rng(42);
  const geom::UnitDiskGraph udg =
      geom::uniform_udg_with_degree(n, degree, rng);
  const graph::Graph& g = udg.graph;
  std::cout << "topology: " << g.n() << " nodes, " << g.m() << " edges, built in "
            << util::fmt(now_seconds() - t0, 2) << " s\n";

  const graph::PackedAdjacency packed(g);
  const double csr_mb = static_cast<double>(g.memory_bytes()) / 1048576.0;
  const double packed_mb =
      static_cast<double>(packed.memory_bytes()) / 1048576.0;
  std::cout << "adjacency: CSR " << util::fmt(csr_mb, 1) << " MiB, packed "
            << util::fmt(packed_mb, 1) << " MiB ("
            << util::fmt(100.0 * packed_mb / std::max(csr_mb, 1e-9), 0)
            << "% of raw)\n";

  sim::SyncNetwork net(udg, 7);
  net.set_threads(threads);
  net.set_all_processes([&](NodeId v) {
    return std::make_unique<WaveProcess>(v, rounds);
  });

  std::int64_t prev_messages = 0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    t0 = now_seconds();
    if (net.run(1) == 0) break;
    const double dt = now_seconds() - t0;
    const std::int64_t msgs = net.metrics().messages_sent - prev_messages;
    prev_messages = net.metrics().messages_sent;
    std::cout << "round " << r << ": " << util::fmt(dt * 1000.0, 1)
              << " ms, " << msgs << " messages ("
              << util::fmt(msgs / std::max(dt, 1e-9) / 1e6, 1) << " M msg/s)\n";
  }

  // How far did the wave get? (Purely informational; with diameter >>
  // rounds the frontier is a disk around node 0.)
  std::int64_t reached = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (net.process_as<WaveProcess>(v).token_ > 0) ++reached;
  }
  std::cout << "wave reached " << reached << "/" << g.n() << " nodes in "
            << net.metrics().rounds << " rounds\n";
  std::cout << "peak RSS " << util::fmt(peak_rss_mb(), 0) << " MiB\n";
  return 0;
}
