// Mobile ad hoc network: how long does a clustering stay valid under node
// motion? — the third robustness concern of the paper's introduction.
//
//   ./mobility_recluster [--n=800] [--steps=10] [--speed=0.35]
//
// Nodes perform a bounded random walk. At epoch 0 we build one k-fold
// backbone per k ∈ {1, 3} (lean greedy construction) and then NEVER update
// it while nodes move. Each epoch we rebuild the unit disk graph from the
// new positions and measure how many non-backbone nodes still have a
// backbone neighbor — i.e., how gracefully the stale clustering decays.
// The k=3 backbone decays far more slowly: a moving node must walk out of
// range of *all three* of its dominators before it is orphaned.
//
// Afterwards the network re-clusters with Algorithm 3, whose O(log log n)
// round complexity is what makes frequent re-clustering affordable.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/udg/udg_kmds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ftc;

std::vector<graph::NodeId> greedy_backbone(const graph::Graph& g,
                                           std::int32_t k) {
  const auto demands =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), k));
  return algo::greedy_kmds(g, demands).set;
}

double stale_coverage(const geom::UnitDiskGraph& now,
                      const std::vector<graph::NodeId>& backbone) {
  const auto members = domination::to_membership(now.graph, backbone);
  const auto cover = domination::closed_coverage_counts(now.graph, members);
  std::int64_t ok = 0, want = 0;
  for (graph::NodeId v = 0; v < now.n(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (members[i]) continue;
    ++want;
    if (cover[i] >= 1) ++ok;
  }
  return want == 0 ? 1.0
                   : static_cast<double>(ok) / static_cast<double>(want);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 800));
  const int steps = static_cast<int>(args.get_int("steps", 10));
  const double speed = args.get_double("speed", 0.35);
  const std::uint64_t seed = args.get_u64("seed", 11);

  util::Rng rng(seed);
  auto udg = geom::uniform_udg_with_degree(n, 12.0, rng);
  double side = 0.0;
  for (const auto& p : udg.positions) side = std::max({side, p.x, p.y});

  const auto backbone1 = greedy_backbone(udg.graph, 1);
  const auto backbone3 = greedy_backbone(udg.graph, 3);
  std::printf(
      "mobile network: n=%d, side=%.1f, node speed=%.2f per epoch\n"
      "stale backbones built at epoch 0: k=1 -> %zu nodes, k=3 -> %zu "
      "nodes\n\n",
      n, side, speed, backbone1.size(), backbone3.size());
  std::printf("epoch | covered by stale k=1 | covered by stale k=3\n");

  for (int step = 0; step <= steps; ++step) {
    if (step > 0) {
      for (auto& p : udg.positions) {
        p.x = std::clamp(p.x + rng.uniform(-speed, speed), 0.0, side);
        p.y = std::clamp(p.y + rng.uniform(-speed, speed), 0.0, side);
      }
      udg = geom::build_udg(std::move(udg.positions), udg.radius);
    }
    std::printf("%5d | %19.1f%% | %19.1f%%\n", step,
                100.0 * stale_coverage(udg, backbone1),
                100.0 * stale_coverage(udg, backbone3));
  }

  // Re-clustering with Algorithm 3: cheap enough to run every few epochs.
  algo::UdgOptions opts;
  opts.k = 3;
  const auto fresh = algo::solve_udg_kmds(udg, opts, seed + 99);
  std::printf(
      "\nre-clustering the moved network with Algorithm 3: %zu leaders in "
      "%lld Part-I rounds\n(O(log log n) - cheap enough to repeat every few "
      "epochs)\n",
      fresh.leaders.size(), static_cast<long long>(fresh.part1_rounds));
  return 0;
}
