// Self-healing backbone under continuous churn — the distributed answer to
// the scenario sensor_backbone.cpp handles with periodic re-clustering.
//
//   ./soak_selfheal [--n=800] [--k=2] [--rounds=3000] [--loss=0.05]
//                   [--threads=1] [--trace=soak.trace] [--metrics=soak.json]
//
// With --trace the run records the observability plane (DESIGN.md §7):
// crashes, suspicions, promotion waves and engine phases land in a Chrome
// trace_event file (open in Perfetto / about:tracing) plus a deterministic
// JSONL stream at <path>.jsonl; --metrics dumps the metric registry.
//
// Every node runs the RepairProcess daemon: heartbeats piggyback on the
// protocol's one word per round, a timeout failure detector flags dead
// neighbors, and 4-round promotion waves locally elect replacements. A
// churn fault plan crashes nodes and rejoins them (with reset state) for
// the whole run; no central coordinator ever intervenes. The printed report
// shows how long coverage holes actually lasted, whether any hole outlived
// the repair threshold (a self-healing failure), and what the backbone
// looks like at the end compared to a from-scratch re-cluster.
#include <cstdio>
#include <string>

#include "algo/baseline/greedy.h"
#include "algo/extensions/soak.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "obs/plane.h"
#include "sim/fault.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 800));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const auto rounds = args.get_int("rounds", 3000);
  const double loss = args.get_double("loss", 0.05);
  const auto threads = static_cast<int>(args.get_int("threads", 1));
  const util::ObsFlags obs_flags = util::parse_obs_flags(args);
  const auto plane = obs::make_plane(obs_flags);

  util::Rng rng(42);
  const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
  const graph::Graph& g = udg.graph;
  const auto demands =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), k));
  const auto base = algo::greedy_kmds(g, demands).set;

  // Nodes crash at ~0.1% per round and come back 40-200 rounds later; the
  // last 400 rounds are fault-free so the final backbone is fully healed.
  const auto plan =
      sim::FaultPlan::churn(0.001, 40, 200, 0,
                            rounds > 400 ? rounds - 400 : rounds);

  algo::SoakOptions opts;
  opts.rounds = rounds;
  opts.message_loss = loss;
  opts.threads = threads;
  opts.plane = plane.get();
  if (loss >= 0.1) {
    // Lossy radios: consecutive-timeout detection mistakes a short drop
    // streak for a crash, flooding the repair daemon with false waves.
    // M-of-N windowed detection forgives isolated drops and still bounds
    // crash-detection latency by the window.
    opts.detection_window = 12;
    opts.detection_misses = 9;
  }
  const auto rep = algo::run_soak(g, &udg, demands, base, plan, opts);
  if (plane != nullptr) obs::export_plane(*plane, obs_flags);

  std::printf("self-healing soak: n=%d k=%d rounds=%lld loss=%.0f%%\n",
              static_cast<int>(n), static_cast<int>(k),
              static_cast<long long>(rounds), 100.0 * loss);
  std::printf("  initial backbone          %zu nodes\n", base.size());
  std::printf("  faults                    %lld crashes, %lld rejoins\n",
              static_cast<long long>(rep.crashes),
              static_cast<long long>(rep.recoveries));
  std::printf("  coverage violations       %lld windows, mean %.1f rounds, "
              "max %lld\n",
              static_cast<long long>(rep.violation_windows),
              rep.mean_violation_window,
              static_cast<long long>(rep.max_violation_window));
  std::printf("  repair threshold          %lld rounds "
              "(timeout + wave bound)\n",
              static_cast<long long>(rep.repair_threshold));
  std::printf("  unrepaired violations     %lld%s\n",
              static_cast<long long>(rep.windows_over_threshold),
              rep.windows_over_threshold == 0 ? "  (self-healing held)"
                                              : "  (PROTOCOL FAILED)");
  std::printf("  promotions                %lld over the whole run\n",
              static_cast<long long>(rep.promotions));
  std::printf("  final backbone            %lld members on %lld live nodes "
              "(fresh re-cluster: %lld)\n",
              static_cast<long long>(rep.final_set_size),
              static_cast<long long>(rep.final_live),
              static_cast<long long>(rep.rebuild_set_size));
  std::printf("  message cost              %.2f msgs/node/round "
              "(heartbeats ride on protocol words)\n",
              rep.messages_per_live_node_round);
  std::printf("  failure detector          %lld suspicions, %lld refuted\n",
              static_cast<long long>(rep.suspicions_raised),
              static_cast<long long>(rep.refuted_suspicions));
  return rep.windows_over_threshold == 0 && rep.final_unsatisfied == 0 ? 0
                                                                       : 1;
}
