// Ad hoc network with non-disk radio propagation — why the paper also
// studies general graphs (Section 1: "signal propagation does often not
// form clear-cut disks").
//
//   ./adhoc_general_graph [--n=600] [--k=2] [--t=3]
//
// Scenario: start from a geometric deployment, then perturb the
// connectivity the way real radios do — obstacles sever some short links,
// reflections create some long ones. The result is NOT a unit disk graph,
// so Algorithm 3's guarantees don't apply; the general-graph pipeline
// (Algorithms 1+2) is the right tool. We run it fully distributed on the
// synchronous simulator and report rounds, message sizes, and quality.
#include <cstdio>

#include "algo/baseline/greedy.h"
#include "algo/pipeline.h"
#include "domination/bounds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 600));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const int t = static_cast<int>(args.get_int("t", 3));
  const std::uint64_t seed = args.get_u64("seed", 5);

  util::Rng rng(seed);
  const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
  const graph::Graph radio = geom::quasi_udg(udg, 0.25, 0.15, rng);
  std::printf(
      "radio graph: n=%d, edges=%zu (geometric had %zu), max degree=%d\n"
      "25%% of short links severed by obstacles, long reflections added\n\n",
      radio.n(), radio.m(), udg.graph.m(), radio.max_degree());

  const auto demands =
      domination::clamp_demands(radio, domination::uniform_demands(n, k));

  // Fully distributed run: every node is a process exchanging O(log n)-bit
  // messages; no node ever sees the global topology.
  algo::PipelineOptions opts;
  opts.t = t;
  opts.seed = seed;
  opts.execution = algo::Execution::kDistributed;
  const auto pipe = algo::run_kmds_pipeline(radio, demands, opts);

  std::printf("distributed Algorithm 1+2 (t=%d):\n", t);
  std::printf("  synchronous rounds:      %lld (theory: 2t^2+2+3 = %lld)\n",
              static_cast<long long>(pipe.total_rounds),
              static_cast<long long>(algo::lp_round_count(t) + 3));
  std::printf("  messages sent:           %lld\n",
              static_cast<long long>(pipe.metrics.messages_sent));
  std::printf("  largest message:         %lld words (O(log n) bits each)\n",
              static_cast<long long>(pipe.metrics.max_message_words));
  std::printf("  fractional objective:    %.2f\n",
              pipe.lp.primal.objective());
  std::printf("  integral %d-fold set:     %zu nodes\n", k,
              pipe.set().size());

  const bool ok = domination::is_k_dominating(radio, pipe.set(), demands);
  const auto greedy = algo::greedy_kmds(radio, demands);
  const double lb = domination::best_lower_bound(
      radio, demands, static_cast<std::int64_t>(greedy.set.size()),
      pipe.lp.dual_bound(demands));
  std::printf("  valid k-fold dominating set: %s\n", ok ? "yes" : "NO");
  std::printf("  vs OPT lower bound %.1f:  %.2fx (centralized greedy: %.2fx)\n",
              lb, static_cast<double>(pipe.set().size()) / lb,
              static_cast<double>(greedy.set.size()) / lb);
  return ok ? 0 : 1;
}
