// Energy-aware backbone rotation — composing the weighted k-MDS extension
// with the fault-tolerance machinery to extend network lifetime.
//
//   ./energy_lifetime [--n=1000] [--k=2] [--epochs=40]
//
// Scenario: cluster heads burn battery much faster than ordinary sensors
// (they relay traffic). Re-clustering every epoch with selection costs set
// to the inverse of remaining battery ("weighted" policy) rotates the
// backbone duty through the network; the weight-blind policy keeps
// re-electing the same topologically convenient nodes until they die.
//
// We simulate both policies on the same deployment and report the network
// lifetime (epochs until 20% of all nodes have died) and the death curve.
// The k-fold redundancy is held constant; only head selection differs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/weighted/weighted.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ftc;
using graph::NodeId;

struct LifetimeResult {
  int epochs_survived = 0;
  std::vector<double> dead_fraction;  // per epoch
};

LifetimeResult simulate(const geom::UnitDiskGraph& udg, std::int32_t k,
                        int max_epochs, bool energy_aware,
                        std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(udg.n());
  std::vector<double> battery(n, 1.0);
  std::vector<std::uint8_t> dead(n, 0);
  constexpr double kHeadCost = 0.06;   // battery burned per epoch as head
  constexpr double kIdleCost = 0.004;  // baseline burn
  util::Rng rng(seed);

  LifetimeResult result;
  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    // Live subgraph and demands.
    std::vector<NodeId> dead_list;
    for (std::size_t v = 0; v < n; ++v) {
      if (dead[v]) dead_list.push_back(static_cast<NodeId>(v));
    }
    const graph::Graph live = udg.graph.without_nodes(dead_list);
    auto demands = domination::clamp_demands(
        live, domination::uniform_demands(live.n(), k));
    for (NodeId v : dead_list) demands[static_cast<std::size_t>(v)] = 0;

    // Elect cluster heads.
    std::vector<NodeId> heads;
    if (energy_aware) {
      algo::NodeWeights weights(n, 1.0);
      for (std::size_t v = 0; v < n; ++v) {
        // Inverse remaining battery (dead nodes are already isolated in
        // `live` and demand nothing).
        weights[v] = 1.0 / std::max(battery[v], 1e-3);
      }
      heads = algo::weighted_greedy_kmds(live, demands, weights).set;
    } else {
      heads = algo::greedy_kmds(live, demands).set;
    }

    // Burn energy; kill exhausted nodes.
    std::vector<std::uint8_t> is_head(n, 0);
    for (NodeId h : heads) is_head[static_cast<std::size_t>(h)] = 1;
    std::size_t dead_count = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!dead[v]) {
        battery[v] -= is_head[v] ? kHeadCost : kIdleCost;
        battery[v] -= rng.uniform(0.0, 0.002);  // environment noise
        if (battery[v] <= 0.0) dead[v] = 1;
      }
      if (dead[v]) ++dead_count;
    }
    const double frac =
        static_cast<double>(dead_count) / static_cast<double>(n);
    result.dead_fraction.push_back(frac);
    result.epochs_survived = epoch + 1;
    if (frac >= 0.20) break;  // network considered dead
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 1000));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 2));
  const int epochs = static_cast<int>(args.get_int("epochs", 60));
  const std::uint64_t seed = args.get_u64("seed", 7);

  util::Rng rng(seed);
  const auto udg = geom::uniform_udg_with_degree(n, 14.0, rng);
  std::printf(
      "deployment: n=%d, k=%d; heads burn 15x idle power; lifetime ends "
      "when 20%% of nodes die\n\n",
      udg.n(), k);

  const auto blind = simulate(udg, k, epochs, false, seed);
  const auto aware = simulate(udg, k, epochs, true, seed);

  auto print_curve = [&](const char* name, const LifetimeResult& r) {
    std::printf("%-13s lifetime: %3d epochs; dead%% at epoch 10/20/30: ",
                name, r.epochs_survived);
    for (int e : {10, 20, 30}) {
      if (static_cast<std::size_t>(e) <= r.dead_fraction.size()) {
        std::printf("%5.1f%%",
                    100.0 * r.dead_fraction[static_cast<std::size_t>(e - 1)]);
      } else {
        std::printf("    - ");
      }
    }
    std::printf("\n");
  };
  print_curve("weight-blind", blind);
  print_curve("energy-aware", aware);

  std::printf(
      "\nRotating cluster-head duty via the weighted k-MDS extension\n"
      "(costs = 1/battery) extends lifetime by %.0f%%.\n",
      100.0 * (static_cast<double>(aware.epochs_survived) /
                   static_cast<double>(blind.epochs_survived) -
               1.0));
  return aware.epochs_survived >= blind.epochs_survived ? 0 : 1;
}
