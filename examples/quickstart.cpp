// Quickstart: build a fault-tolerant cluster backbone on a small sensor
// deployment with both of the paper's algorithms, and validate the results.
//
//   ./quickstart [--n=300] [--k=3] [--seed=1]
//
// Walks through the whole public API:
//   1. deploy nodes and build the unit disk graph,
//   2. run Algorithm 3 (the UDG specialist, O(log log n) rounds),
//   3. run Algorithm 1 + 2 (the general-graph pipeline) on the same graph,
//   4. validate both k-fold dominating sets and compare sizes against a
//      lower bound on the optimum.
#include <cstdio>

#include "algo/baseline/greedy.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "domination/bounds.h"
#include "domination/domination.h"
#include "geom/udg.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace ftc;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 300));
  const auto k = static_cast<std::int32_t>(args.get_int("k", 3));
  const std::uint64_t seed = args.get_u64("seed", 1);

  // 1. Deploy n sensors uniformly with expected radio degree ~15 and
  //    connect every pair within communication radius 1.
  util::Rng rng(seed);
  const geom::UnitDiskGraph udg = geom::uniform_udg_with_degree(n, 15.0, rng);
  std::printf("deployment: n=%d, edges=%zu, max degree=%d\n", udg.n(),
              udg.graph.m(), udg.graph.max_degree());

  // 2. Algorithm 3: the UDG clustering specialist.
  algo::UdgOptions udg_opts;
  udg_opts.k = k;
  const algo::UdgResult alg3 = algo::solve_udg_kmds(udg, udg_opts, seed);
  const bool alg3_ok = domination::is_k_dominating(
      udg.graph, alg3.leaders, k, domination::Mode::kOpenForNonMembers);
  std::printf(
      "\nAlgorithm 3 (UDG, O(log log n) rounds):\n"
      "  Part I rounds: %lld, Part II iterations: %lld\n"
      "  Part I leaders: %zu -> final %d-fold dominating set: %zu nodes\n"
      "  valid k-fold dominating set: %s\n",
      static_cast<long long>(alg3.part1_rounds),
      static_cast<long long>(alg3.part2_iterations),
      alg3.part1_leaders.size(), k, alg3.leaders.size(),
      alg3_ok ? "yes" : "NO");

  // 3. Algorithms 1 + 2: the general-graph pipeline (needs no geometry).
  const auto demands = domination::clamp_demands(
      udg.graph, domination::uniform_demands(udg.n(), k));
  algo::PipelineOptions pipe_opts;
  pipe_opts.t = 3;  // O(t^2) rounds, ~O(t * Delta^(2/t) log Delta) approx
  pipe_opts.seed = seed;
  const algo::PipelineResult pipe =
      algo::run_kmds_pipeline(udg.graph, demands, pipe_opts);
  const bool pipe_ok = domination::is_k_dominating(udg.graph, pipe.set(),
                                                   demands);
  std::printf(
      "\nAlgorithms 1+2 (general graphs, t=3 -> %lld rounds):\n"
      "  fractional objective: %.2f, integral set: %zu nodes\n"
      "  valid k-fold dominating set: %s\n",
      static_cast<long long>(pipe.total_rounds),
      pipe.lp.primal.objective(), pipe.set().size(), pipe_ok ? "yes" : "NO");

  // 4. Quality: compare against a lower bound on the optimum.
  const auto greedy = algo::greedy_kmds(udg.graph, demands);
  const double lb = domination::best_lower_bound(
      udg.graph, demands, static_cast<std::int64_t>(greedy.set.size()),
      pipe.lp.dual_bound(demands));
  std::printf(
      "\nquality (vs OPT lower bound %.1f):\n"
      "  Algorithm 3: %.2fx    Alg1+2: %.2fx    centralized greedy: %.2fx\n",
      lb, static_cast<double>(alg3.leaders.size()) / lb,
      static_cast<double>(pipe.set().size()) / lb,
      static_cast<double>(greedy.set.size()) / lb);

  return alg3_ok && pipe_ok ? 0 : 1;
}
