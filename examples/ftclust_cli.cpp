// ftclust_cli — command-line front end for the whole library.
//
// Reads a network (edge-list file or built-in generator), runs a chosen
// k-MDS algorithm, validates the result, and optionally writes the
// dominating set and a Graphviz rendering.
//
//   ftclust_cli --generate=udg --n=500 --degree=14 --algorithm=udg --k=3
//   ftclust_cli --graph=net.edges --algorithm=pipeline --k=2 --t=4
//               --connect --out=backbone.txt --dot=backbone.dot
//
// Options:
//   --graph=PATH          read an edge list ("n m" header, "u v" lines)
//   --udg=PATH            read a deployment saved by --save-udg (keeps
//                         coordinates, so --algorithm=udg and --svg work)
//   --save-udg=PATH       save the generated deployment for reuse
//   --generate=FAMILY     gnp | udg | ba | grid | ws      (default: udg)
//   --n, --degree, --seed generator parameters
//   --algorithm=NAME      pipeline | greedy | udg | lrg | mis | luby |
//                         exact | weighted-greedy          (default: greedy)
//   --k=K                 fold parameter (default 1)
//   --t=T                 Algorithm 1 trade-off parameter (default 3)
//   --weights=LO,HI       random node costs (weighted-greedy only)
//   --connect             post-process into a connected backbone
//   --out=PATH            write the set, one node id per line
//   --dot=PATH            write a Graphviz file with the set highlighted
//   --svg=PATH            render the deployment (UDG generator only)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "algo/baseline/greedy.h"
#include "algo/baseline/lrg.h"
#include "algo/baseline/luby.h"
#include "algo/baseline/mis_clustering.h"
#include "algo/exact/exact.h"
#include "algo/extensions/cds.h"
#include "algo/pipeline.h"
#include "algo/udg/udg_kmds.h"
#include "algo/weighted/weighted.h"
#include "domination/bounds.h"
#include "domination/domination.h"
#include "geom/svg.h"
#include "geom/udg.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ftc;

struct Network {
  graph::Graph graph;
  geom::UnitDiskGraph udg;  // populated only for --generate=udg
  bool has_geometry = false;
};

Network load_network(const util::Args& args) {
  Network net;
  const std::string path = args.get_string("graph", "");
  if (!path.empty()) {
    net.graph = graph::load_edge_list(path);
    return net;
  }
  const std::string udg_path = args.get_string("udg", "");
  if (!udg_path.empty()) {
    net.udg = geom::load_udg(udg_path);
    net.graph = net.udg.graph;
    net.has_geometry = true;
    return net;
  }
  const std::string family = args.get_string("generate", "udg");
  const auto n = static_cast<graph::NodeId>(args.get_int("n", 500));
  const double degree = args.get_double("degree", 12.0);
  util::Rng rng(args.get_u64("seed", 1));
  if (family == "udg") {
    net.udg = geom::uniform_udg_with_degree(n, degree, rng);
    net.graph = net.udg.graph;
    net.has_geometry = true;
  } else if (family == "gnp") {
    net.graph = graph::gnp(n, degree / static_cast<double>(n - 1), rng);
  } else if (family == "ba") {
    net.graph = graph::barabasi_albert(
        n, std::max<graph::NodeId>(1, static_cast<graph::NodeId>(degree / 2)),
        rng);
  } else if (family == "grid") {
    const auto side = static_cast<graph::NodeId>(
        std::llround(std::sqrt(static_cast<double>(n))));
    net.graph = graph::grid(side, side);
  } else if (family == "ws") {
    auto k_nearest =
        std::max<graph::NodeId>(2, static_cast<graph::NodeId>(degree));
    if (k_nearest % 2 != 0) ++k_nearest;
    net.graph = graph::watts_strogatz(n, k_nearest, 0.1, rng);
  } else {
    std::fprintf(stderr, "unknown --generate=%s\n", family.c_str());
    std::exit(2);
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::printf("see the header comment of examples/ftclust_cli.cpp\n");
    return 0;
  }

  const Network net = load_network(args);
  const std::string save_udg_path = args.get_string("save-udg", "");
  if (!save_udg_path.empty()) {
    if (!net.has_geometry) {
      std::fprintf(stderr, "--save-udg needs a geometric network\n");
      return 2;
    }
    geom::save_udg(save_udg_path, net.udg);
    std::printf("deployment saved to %s\n", save_udg_path.c_str());
  }
  const graph::Graph& g = net.graph;
  const auto k = static_cast<std::int32_t>(args.get_int("k", 1));
  const std::uint64_t seed = args.get_u64("seed", 1);
  const auto demands =
      domination::clamp_demands(g, domination::uniform_demands(g.n(), k));

  std::printf("network: n=%d, m=%zu, Delta=%d\n", g.n(), g.m(),
              g.max_degree());

  const std::string algorithm = args.get_string("algorithm", "greedy");
  std::vector<graph::NodeId> set;
  auto mode = domination::Mode::kClosedNeighborhood;
  std::int64_t rounds = -1;  // -1: centralized/sequential

  if (algorithm == "pipeline") {
    algo::PipelineOptions opts;
    opts.t = static_cast<int>(args.get_int("t", 3));
    opts.seed = seed;
    const auto result = algo::run_kmds_pipeline(g, demands, opts);
    set = result.set();
    rounds = result.total_rounds;
  } else if (algorithm == "greedy") {
    set = algo::greedy_kmds(g, demands).set;
  } else if (algorithm == "udg") {
    if (!net.has_geometry) {
      std::fprintf(stderr,
                   "--algorithm=udg needs --generate=udg (distance "
                   "sensing)\n");
      return 2;
    }
    algo::UdgOptions opts;
    opts.k = k;
    const auto result = algo::solve_udg_kmds(net.udg, opts, seed);
    set = result.leaders;
    mode = domination::Mode::kOpenForNonMembers;
    rounds = 2 * result.part1_rounds + 3 * (result.part2_iterations + 1);
  } else if (algorithm == "lrg") {
    const auto result = algo::lrg_kmds(g, demands, seed);
    set = result.set;
    rounds = result.rounds;
  } else if (algorithm == "mis") {
    set = algo::mis_kfold(g, k).set;
    mode = domination::Mode::kOpenForNonMembers;
  } else if (algorithm == "luby") {
    const auto result = algo::luby_mis_kfold(g, k, seed);
    set = result.set;
    mode = domination::Mode::kOpenForNonMembers;
    rounds = result.rounds;
  } else if (algorithm == "exact") {
    const auto result = algo::exact_kmds(g, demands);
    if (!result.feasible) {
      std::printf("instance infeasible (some k_i exceeds deg+1)\n");
      return 1;
    }
    if (!result.optimal) std::printf("warning: budget hit, not optimal\n");
    set = result.set;
  } else if (algorithm == "weighted-greedy") {
    const auto lohi = args.get_string("weights", "1,4");
    const auto comma = lohi.find(',');
    const double lo = std::stod(lohi.substr(0, comma));
    const double hi = std::stod(lohi.substr(comma + 1));
    util::Rng wrng(seed + 17);
    const auto weights = algo::random_weights(g.n(), lo, hi, wrng);
    const auto result = algo::weighted_greedy_kmds(g, demands, weights);
    set = result.set;
    std::printf("weighted objective: %.2f (weights in [%.1f, %.1f])\n",
                result.weight, lo, hi);
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 2;
  }

  if (args.get_bool("connect", false)) {
    const auto connected = algo::connect_dominating_set(g, set);
    std::printf("connect: +%lld connectors over %lld bridges\n",
                static_cast<long long>(connected.connectors_added),
                static_cast<long long>(connected.bridges_used));
    set = connected.set;
  }

  const bool valid = domination::is_k_dominating(g, set, demands, mode);
  const auto greedy_size = algo::greedy_kmds(g, demands).set.size();
  const double lb = domination::best_lower_bound(
      g, demands, static_cast<std::int64_t>(greedy_size));

  std::printf("algorithm: %s\n", algorithm.c_str());
  std::printf("set size: %zu (%.1f%% of nodes)\n", set.size(),
              100.0 * static_cast<double>(set.size()) /
                  static_cast<double>(std::max<graph::NodeId>(1, g.n())));
  if (rounds >= 0) {
    std::printf("synchronous rounds: %lld\n", static_cast<long long>(rounds));
  }
  std::printf("valid %d-fold dominating set: %s\n", k, valid ? "yes" : "NO");
  if (lb > 0) {
    std::printf("vs OPT lower bound %.1f: %.2fx\n", lb,
                static_cast<double>(set.size()) / lb);
  }

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    for (graph::NodeId v : set) out << v << '\n';
    std::printf("set written to %s\n", out_path.c_str());
  }
  const std::string dot_path = args.get_string("dot", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::trunc);
    graph::write_dot(out, g, set);
    std::printf("dot written to %s\n", dot_path.c_str());
  }
  const std::string svg_path = args.get_string("svg", "");
  if (!svg_path.empty()) {
    if (!net.has_geometry) {
      std::fprintf(stderr, "--svg needs --generate=udg (coordinates)\n");
      return 2;
    }
    geom::SvgLayer layer;
    layer.nodes = set;
    layer.color = "#d62728";
    layer.label = "k-fold dominating set (" + std::to_string(set.size()) +
                  " nodes)";
    const std::vector<geom::SvgLayer> layers{layer};
    geom::save_svg(svg_path, net.udg, layers);
    std::printf("svg written to %s\n", svg_path.c_str());
  }
  return valid ? 0 : 1;
}
