file(REMOVE_RECURSE
  "CMakeFiles/mobility_recluster.dir/mobility_recluster.cpp.o"
  "CMakeFiles/mobility_recluster.dir/mobility_recluster.cpp.o.d"
  "mobility_recluster"
  "mobility_recluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_recluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
