# Empty dependencies file for mobility_recluster.
# This may be replaced when dependencies are built.
