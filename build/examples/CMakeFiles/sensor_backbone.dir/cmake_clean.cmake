file(REMOVE_RECURSE
  "CMakeFiles/sensor_backbone.dir/sensor_backbone.cpp.o"
  "CMakeFiles/sensor_backbone.dir/sensor_backbone.cpp.o.d"
  "sensor_backbone"
  "sensor_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
