file(REMOVE_RECURSE
  "CMakeFiles/ftclust_cli.dir/ftclust_cli.cpp.o"
  "CMakeFiles/ftclust_cli.dir/ftclust_cli.cpp.o.d"
  "ftclust_cli"
  "ftclust_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftclust_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
