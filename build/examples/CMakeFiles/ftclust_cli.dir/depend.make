# Empty dependencies file for ftclust_cli.
# This may be replaced when dependencies are built.
