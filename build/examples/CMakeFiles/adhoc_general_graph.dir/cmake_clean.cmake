file(REMOVE_RECURSE
  "CMakeFiles/adhoc_general_graph.dir/adhoc_general_graph.cpp.o"
  "CMakeFiles/adhoc_general_graph.dir/adhoc_general_graph.cpp.o.d"
  "adhoc_general_graph"
  "adhoc_general_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_general_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
