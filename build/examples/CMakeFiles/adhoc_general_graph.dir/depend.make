# Empty dependencies file for adhoc_general_graph.
# This may be replaced when dependencies are built.
