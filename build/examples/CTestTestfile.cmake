# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "--n=120" "--k=2")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_sensor_backbone "/root/repo/build/examples/sensor_backbone" "--n=300" "--days=6")
set_tests_properties(smoke_sensor_backbone PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_adhoc "/root/repo/build/examples/adhoc_general_graph" "--n=150" "--t=2")
set_tests_properties(smoke_adhoc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_mobility "/root/repo/build/examples/mobility_recluster" "--n=150" "--steps=3")
set_tests_properties(smoke_mobility PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cli_udg "/root/repo/build/examples/ftclust_cli" "--generate=udg" "--n=150" "--algorithm=udg" "--k=2" "--connect")
set_tests_properties(smoke_cli_udg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cli_pipeline "/root/repo/build/examples/ftclust_cli" "--generate=gnp" "--n=100" "--algorithm=pipeline" "--k=2")
set_tests_properties(smoke_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cli_exact "/root/repo/build/examples/ftclust_cli" "--generate=grid" "--n=25" "--algorithm=exact" "--k=1")
set_tests_properties(smoke_cli_exact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_energy "/root/repo/build/examples/energy_lifetime" "--n=250" "--epochs=15")
set_tests_properties(smoke_energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_cli_udg_io "/root/repo/build/examples/ftclust_cli" "--generate=udg" "--n=80" "--algorithm=greedy" "--k=1" "--save-udg=cli_smoke.udg")
set_tests_properties(smoke_cli_udg_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
