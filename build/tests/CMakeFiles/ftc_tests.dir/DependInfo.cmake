
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo/cds_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/cds_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/cds_test.cpp.o.d"
  "/root/repo/tests/algo/exact_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/exact_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/exact_test.cpp.o.d"
  "/root/repo/tests/algo/greedy_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/greedy_test.cpp.o.d"
  "/root/repo/tests/algo/lp_kmds_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/lp_kmds_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/lp_kmds_test.cpp.o.d"
  "/root/repo/tests/algo/lp_process_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/lp_process_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/lp_process_test.cpp.o.d"
  "/root/repo/tests/algo/lp_twohop_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/lp_twohop_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/lp_twohop_test.cpp.o.d"
  "/root/repo/tests/algo/lrg_process_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/lrg_process_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/lrg_process_test.cpp.o.d"
  "/root/repo/tests/algo/lrg_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/lrg_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/lrg_test.cpp.o.d"
  "/root/repo/tests/algo/luby_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/luby_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/luby_test.cpp.o.d"
  "/root/repo/tests/algo/mis_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/mis_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/mis_test.cpp.o.d"
  "/root/repo/tests/algo/repair_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/repair_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/repair_test.cpp.o.d"
  "/root/repo/tests/algo/rounding_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/rounding_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/rounding_test.cpp.o.d"
  "/root/repo/tests/algo/udg_kmds_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/udg_kmds_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/udg_kmds_test.cpp.o.d"
  "/root/repo/tests/algo/weighted_test.cpp" "tests/CMakeFiles/ftc_tests.dir/algo/weighted_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/algo/weighted_test.cpp.o.d"
  "/root/repo/tests/claims/paper_claims_test.cpp" "tests/CMakeFiles/ftc_tests.dir/claims/paper_claims_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/claims/paper_claims_test.cpp.o.d"
  "/root/repo/tests/domination/bounds_test.cpp" "tests/CMakeFiles/ftc_tests.dir/domination/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/domination/bounds_test.cpp.o.d"
  "/root/repo/tests/domination/domination_test.cpp" "tests/CMakeFiles/ftc_tests.dir/domination/domination_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/domination/domination_test.cpp.o.d"
  "/root/repo/tests/domination/fractional_test.cpp" "tests/CMakeFiles/ftc_tests.dir/domination/fractional_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/domination/fractional_test.cpp.o.d"
  "/root/repo/tests/domination/lp_solver_test.cpp" "tests/CMakeFiles/ftc_tests.dir/domination/lp_solver_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/domination/lp_solver_test.cpp.o.d"
  "/root/repo/tests/domination/profiles_test.cpp" "tests/CMakeFiles/ftc_tests.dir/domination/profiles_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/domination/profiles_test.cpp.o.d"
  "/root/repo/tests/geom/cover_test.cpp" "tests/CMakeFiles/ftc_tests.dir/geom/cover_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/geom/cover_test.cpp.o.d"
  "/root/repo/tests/geom/point_test.cpp" "tests/CMakeFiles/ftc_tests.dir/geom/point_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/geom/point_test.cpp.o.d"
  "/root/repo/tests/geom/svg_test.cpp" "tests/CMakeFiles/ftc_tests.dir/geom/svg_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/geom/svg_test.cpp.o.d"
  "/root/repo/tests/geom/udg_test.cpp" "tests/CMakeFiles/ftc_tests.dir/geom/udg_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/geom/udg_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/ftc_tests.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/ftc_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/io_test.cpp" "tests/CMakeFiles/ftc_tests.dir/graph/io_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/graph/io_test.cpp.o.d"
  "/root/repo/tests/graph/properties_test.cpp" "tests/CMakeFiles/ftc_tests.dir/graph/properties_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/graph/properties_test.cpp.o.d"
  "/root/repo/tests/integration/edge_cases_test.cpp" "tests/CMakeFiles/ftc_tests.dir/integration/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/integration/edge_cases_test.cpp.o.d"
  "/root/repo/tests/integration/faults_test.cpp" "tests/CMakeFiles/ftc_tests.dir/integration/faults_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/integration/faults_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/ftc_tests.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/property/invariants_test.cpp" "tests/CMakeFiles/ftc_tests.dir/property/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/property/invariants_test.cpp.o.d"
  "/root/repo/tests/sim/async_test.cpp" "tests/CMakeFiles/ftc_tests.dir/sim/async_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/sim/async_test.cpp.o.d"
  "/root/repo/tests/sim/message_test.cpp" "tests/CMakeFiles/ftc_tests.dir/sim/message_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/sim/message_test.cpp.o.d"
  "/root/repo/tests/sim/network_test.cpp" "tests/CMakeFiles/ftc_tests.dir/sim/network_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/sim/network_test.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/ftc_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/ftc_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/ftc_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/ftc_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/ftc_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/ftc_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/ftc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/domination/CMakeFiles/ftc_domination.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ftc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
