
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domination/bounds.cpp" "src/domination/CMakeFiles/ftc_domination.dir/bounds.cpp.o" "gcc" "src/domination/CMakeFiles/ftc_domination.dir/bounds.cpp.o.d"
  "/root/repo/src/domination/domination.cpp" "src/domination/CMakeFiles/ftc_domination.dir/domination.cpp.o" "gcc" "src/domination/CMakeFiles/ftc_domination.dir/domination.cpp.o.d"
  "/root/repo/src/domination/fractional.cpp" "src/domination/CMakeFiles/ftc_domination.dir/fractional.cpp.o" "gcc" "src/domination/CMakeFiles/ftc_domination.dir/fractional.cpp.o.d"
  "/root/repo/src/domination/lp_solver.cpp" "src/domination/CMakeFiles/ftc_domination.dir/lp_solver.cpp.o" "gcc" "src/domination/CMakeFiles/ftc_domination.dir/lp_solver.cpp.o.d"
  "/root/repo/src/domination/profiles.cpp" "src/domination/CMakeFiles/ftc_domination.dir/profiles.cpp.o" "gcc" "src/domination/CMakeFiles/ftc_domination.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/ftc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
