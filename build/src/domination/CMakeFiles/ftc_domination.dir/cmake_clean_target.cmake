file(REMOVE_RECURSE
  "libftc_domination.a"
)
