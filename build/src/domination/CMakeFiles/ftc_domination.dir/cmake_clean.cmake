file(REMOVE_RECURSE
  "CMakeFiles/ftc_domination.dir/bounds.cpp.o"
  "CMakeFiles/ftc_domination.dir/bounds.cpp.o.d"
  "CMakeFiles/ftc_domination.dir/domination.cpp.o"
  "CMakeFiles/ftc_domination.dir/domination.cpp.o.d"
  "CMakeFiles/ftc_domination.dir/fractional.cpp.o"
  "CMakeFiles/ftc_domination.dir/fractional.cpp.o.d"
  "CMakeFiles/ftc_domination.dir/lp_solver.cpp.o"
  "CMakeFiles/ftc_domination.dir/lp_solver.cpp.o.d"
  "CMakeFiles/ftc_domination.dir/profiles.cpp.o"
  "CMakeFiles/ftc_domination.dir/profiles.cpp.o.d"
  "libftc_domination.a"
  "libftc_domination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_domination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
