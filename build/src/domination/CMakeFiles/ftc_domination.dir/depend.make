# Empty dependencies file for ftc_domination.
# This may be replaced when dependencies are built.
