file(REMOVE_RECURSE
  "CMakeFiles/ftc_geom.dir/cover.cpp.o"
  "CMakeFiles/ftc_geom.dir/cover.cpp.o.d"
  "CMakeFiles/ftc_geom.dir/point.cpp.o"
  "CMakeFiles/ftc_geom.dir/point.cpp.o.d"
  "CMakeFiles/ftc_geom.dir/svg.cpp.o"
  "CMakeFiles/ftc_geom.dir/svg.cpp.o.d"
  "CMakeFiles/ftc_geom.dir/udg.cpp.o"
  "CMakeFiles/ftc_geom.dir/udg.cpp.o.d"
  "libftc_geom.a"
  "libftc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
