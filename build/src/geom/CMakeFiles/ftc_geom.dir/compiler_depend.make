# Empty compiler generated dependencies file for ftc_geom.
# This may be replaced when dependencies are built.
