file(REMOVE_RECURSE
  "libftc_geom.a"
)
