
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/cover.cpp" "src/geom/CMakeFiles/ftc_geom.dir/cover.cpp.o" "gcc" "src/geom/CMakeFiles/ftc_geom.dir/cover.cpp.o.d"
  "/root/repo/src/geom/point.cpp" "src/geom/CMakeFiles/ftc_geom.dir/point.cpp.o" "gcc" "src/geom/CMakeFiles/ftc_geom.dir/point.cpp.o.d"
  "/root/repo/src/geom/svg.cpp" "src/geom/CMakeFiles/ftc_geom.dir/svg.cpp.o" "gcc" "src/geom/CMakeFiles/ftc_geom.dir/svg.cpp.o.d"
  "/root/repo/src/geom/udg.cpp" "src/geom/CMakeFiles/ftc_geom.dir/udg.cpp.o" "gcc" "src/geom/CMakeFiles/ftc_geom.dir/udg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
