file(REMOVE_RECURSE
  "libftc_util.a"
)
