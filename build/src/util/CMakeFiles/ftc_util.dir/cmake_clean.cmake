file(REMOVE_RECURSE
  "CMakeFiles/ftc_util.dir/cli.cpp.o"
  "CMakeFiles/ftc_util.dir/cli.cpp.o.d"
  "CMakeFiles/ftc_util.dir/csv.cpp.o"
  "CMakeFiles/ftc_util.dir/csv.cpp.o.d"
  "CMakeFiles/ftc_util.dir/rng.cpp.o"
  "CMakeFiles/ftc_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftc_util.dir/stats.cpp.o"
  "CMakeFiles/ftc_util.dir/stats.cpp.o.d"
  "CMakeFiles/ftc_util.dir/table.cpp.o"
  "CMakeFiles/ftc_util.dir/table.cpp.o.d"
  "libftc_util.a"
  "libftc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
