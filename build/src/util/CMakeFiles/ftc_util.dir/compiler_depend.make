# Empty compiler generated dependencies file for ftc_util.
# This may be replaced when dependencies are built.
