file(REMOVE_RECURSE
  "libftc_sim.a"
)
