file(REMOVE_RECURSE
  "CMakeFiles/ftc_sim.dir/async.cpp.o"
  "CMakeFiles/ftc_sim.dir/async.cpp.o.d"
  "CMakeFiles/ftc_sim.dir/message.cpp.o"
  "CMakeFiles/ftc_sim.dir/message.cpp.o.d"
  "CMakeFiles/ftc_sim.dir/network.cpp.o"
  "CMakeFiles/ftc_sim.dir/network.cpp.o.d"
  "libftc_sim.a"
  "libftc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
