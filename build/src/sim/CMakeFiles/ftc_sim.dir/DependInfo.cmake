
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async.cpp" "src/sim/CMakeFiles/ftc_sim.dir/async.cpp.o" "gcc" "src/sim/CMakeFiles/ftc_sim.dir/async.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/sim/CMakeFiles/ftc_sim.dir/message.cpp.o" "gcc" "src/sim/CMakeFiles/ftc_sim.dir/message.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/ftc_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/ftc_sim.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ftc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
