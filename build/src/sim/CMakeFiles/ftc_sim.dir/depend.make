# Empty dependencies file for ftc_sim.
# This may be replaced when dependencies are built.
