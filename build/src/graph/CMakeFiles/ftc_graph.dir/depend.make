# Empty dependencies file for ftc_graph.
# This may be replaced when dependencies are built.
