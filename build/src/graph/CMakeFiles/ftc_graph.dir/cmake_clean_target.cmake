file(REMOVE_RECURSE
  "libftc_graph.a"
)
