file(REMOVE_RECURSE
  "CMakeFiles/ftc_graph.dir/generators.cpp.o"
  "CMakeFiles/ftc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ftc_graph.dir/graph.cpp.o"
  "CMakeFiles/ftc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ftc_graph.dir/io.cpp.o"
  "CMakeFiles/ftc_graph.dir/io.cpp.o.d"
  "CMakeFiles/ftc_graph.dir/properties.cpp.o"
  "CMakeFiles/ftc_graph.dir/properties.cpp.o.d"
  "libftc_graph.a"
  "libftc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
