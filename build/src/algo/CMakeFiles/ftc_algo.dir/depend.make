# Empty dependencies file for ftc_algo.
# This may be replaced when dependencies are built.
