
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/baseline/greedy.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/greedy.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/greedy.cpp.o.d"
  "/root/repo/src/algo/baseline/lrg.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/lrg.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/lrg.cpp.o.d"
  "/root/repo/src/algo/baseline/lrg_process.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/lrg_process.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/lrg_process.cpp.o.d"
  "/root/repo/src/algo/baseline/luby.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/luby.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/luby.cpp.o.d"
  "/root/repo/src/algo/baseline/luby_process.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/luby_process.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/luby_process.cpp.o.d"
  "/root/repo/src/algo/baseline/mis_clustering.cpp" "src/algo/CMakeFiles/ftc_algo.dir/baseline/mis_clustering.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/baseline/mis_clustering.cpp.o.d"
  "/root/repo/src/algo/exact/exact.cpp" "src/algo/CMakeFiles/ftc_algo.dir/exact/exact.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/exact/exact.cpp.o.d"
  "/root/repo/src/algo/extensions/cds.cpp" "src/algo/CMakeFiles/ftc_algo.dir/extensions/cds.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/extensions/cds.cpp.o.d"
  "/root/repo/src/algo/extensions/repair.cpp" "src/algo/CMakeFiles/ftc_algo.dir/extensions/repair.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/extensions/repair.cpp.o.d"
  "/root/repo/src/algo/lp/lp_kmds.cpp" "src/algo/CMakeFiles/ftc_algo.dir/lp/lp_kmds.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/lp/lp_kmds.cpp.o.d"
  "/root/repo/src/algo/lp/lp_kmds_process.cpp" "src/algo/CMakeFiles/ftc_algo.dir/lp/lp_kmds_process.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/lp/lp_kmds_process.cpp.o.d"
  "/root/repo/src/algo/pipeline.cpp" "src/algo/CMakeFiles/ftc_algo.dir/pipeline.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/pipeline.cpp.o.d"
  "/root/repo/src/algo/rounding/rounding.cpp" "src/algo/CMakeFiles/ftc_algo.dir/rounding/rounding.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/rounding/rounding.cpp.o.d"
  "/root/repo/src/algo/rounding/rounding_process.cpp" "src/algo/CMakeFiles/ftc_algo.dir/rounding/rounding_process.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/rounding/rounding_process.cpp.o.d"
  "/root/repo/src/algo/udg/udg_kmds.cpp" "src/algo/CMakeFiles/ftc_algo.dir/udg/udg_kmds.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/udg/udg_kmds.cpp.o.d"
  "/root/repo/src/algo/udg/udg_kmds_process.cpp" "src/algo/CMakeFiles/ftc_algo.dir/udg/udg_kmds_process.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/udg/udg_kmds_process.cpp.o.d"
  "/root/repo/src/algo/weighted/weighted.cpp" "src/algo/CMakeFiles/ftc_algo.dir/weighted/weighted.cpp.o" "gcc" "src/algo/CMakeFiles/ftc_algo.dir/weighted/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/domination/CMakeFiles/ftc_domination.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ftc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
