file(REMOVE_RECURSE
  "libftc_algo.a"
)
