file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_endtoend.dir/bench_e3_endtoend.cpp.o"
  "CMakeFiles/bench_e3_endtoend.dir/bench_e3_endtoend.cpp.o.d"
  "bench_e3_endtoend"
  "bench_e3_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
