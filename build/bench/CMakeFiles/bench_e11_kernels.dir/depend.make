# Empty dependencies file for bench_e11_kernels.
# This may be replaced when dependencies are built.
