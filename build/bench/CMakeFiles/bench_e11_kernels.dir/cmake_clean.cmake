file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_kernels.dir/bench_e11_kernels.cpp.o"
  "CMakeFiles/bench_e11_kernels.dir/bench_e11_kernels.cpp.o.d"
  "bench_e11_kernels"
  "bench_e11_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
