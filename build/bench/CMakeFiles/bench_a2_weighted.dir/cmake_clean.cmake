file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_weighted.dir/bench_a2_weighted.cpp.o"
  "CMakeFiles/bench_a2_weighted.dir/bench_a2_weighted.cpp.o.d"
  "bench_a2_weighted"
  "bench_a2_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
