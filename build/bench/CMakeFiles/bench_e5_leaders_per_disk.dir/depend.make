# Empty dependencies file for bench_e5_leaders_per_disk.
# This may be replaced when dependencies are built.
