file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_leaders_per_disk.dir/bench_e5_leaders_per_disk.cpp.o"
  "CMakeFiles/bench_e5_leaders_per_disk.dir/bench_e5_leaders_per_disk.cpp.o.d"
  "bench_e5_leaders_per_disk"
  "bench_e5_leaders_per_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_leaders_per_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
