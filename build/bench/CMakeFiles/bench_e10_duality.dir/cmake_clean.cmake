file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_duality.dir/bench_e10_duality.cpp.o"
  "CMakeFiles/bench_e10_duality.dir/bench_e10_duality.cpp.o.d"
  "bench_e10_duality"
  "bench_e10_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
