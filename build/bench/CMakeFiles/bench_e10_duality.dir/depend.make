# Empty dependencies file for bench_e10_duality.
# This may be replaced when dependencies are built.
