# Empty dependencies file for bench_a4_repair.
# This may be replaced when dependencies are built.
