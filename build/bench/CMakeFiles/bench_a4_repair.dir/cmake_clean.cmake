file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_repair.dir/bench_a4_repair.cpp.o"
  "CMakeFiles/bench_a4_repair.dir/bench_a4_repair.cpp.o.d"
  "bench_a4_repair"
  "bench_a4_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
