file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_quantization.dir/bench_a1_quantization.cpp.o"
  "CMakeFiles/bench_a1_quantization.dir/bench_a1_quantization.cpp.o.d"
  "bench_a1_quantization"
  "bench_a1_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
