# Empty dependencies file for bench_e6_geometry.
# This may be replaced when dependencies are built.
