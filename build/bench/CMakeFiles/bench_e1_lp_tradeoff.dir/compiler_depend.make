# Empty compiler generated dependencies file for bench_e1_lp_tradeoff.
# This may be replaced when dependencies are built.
