file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_lp_tradeoff.dir/bench_e1_lp_tradeoff.cpp.o"
  "CMakeFiles/bench_e1_lp_tradeoff.dir/bench_e1_lp_tradeoff.cpp.o.d"
  "bench_e1_lp_tradeoff"
  "bench_e1_lp_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_lp_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
