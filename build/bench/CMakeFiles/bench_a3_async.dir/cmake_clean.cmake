file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_async.dir/bench_a3_async.cpp.o"
  "CMakeFiles/bench_a3_async.dir/bench_a3_async.cpp.o.d"
  "bench_a3_async"
  "bench_a3_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
