# Empty dependencies file for bench_a5_udg_params.
# This may be replaced when dependencies are built.
