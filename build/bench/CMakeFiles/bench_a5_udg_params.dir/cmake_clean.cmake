file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_udg_params.dir/bench_a5_udg_params.cpp.o"
  "CMakeFiles/bench_a5_udg_params.dir/bench_a5_udg_params.cpp.o.d"
  "bench_a5_udg_params"
  "bench_a5_udg_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_udg_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
