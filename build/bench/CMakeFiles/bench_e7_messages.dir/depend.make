# Empty dependencies file for bench_e7_messages.
# This may be replaced when dependencies are built.
