file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_messages.dir/bench_e7_messages.cpp.o"
  "CMakeFiles/bench_e7_messages.dir/bench_e7_messages.cpp.o.d"
  "bench_e7_messages"
  "bench_e7_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
