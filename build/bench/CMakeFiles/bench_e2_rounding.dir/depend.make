# Empty dependencies file for bench_e2_rounding.
# This may be replaced when dependencies are built.
