file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_rounding.dir/bench_e2_rounding.cpp.o"
  "CMakeFiles/bench_e2_rounding.dir/bench_e2_rounding.cpp.o.d"
  "bench_e2_rounding"
  "bench_e2_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
