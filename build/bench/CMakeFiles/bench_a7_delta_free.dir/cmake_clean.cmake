file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_delta_free.dir/bench_a7_delta_free.cpp.o"
  "CMakeFiles/bench_a7_delta_free.dir/bench_a7_delta_free.cpp.o.d"
  "bench_a7_delta_free"
  "bench_a7_delta_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_delta_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
