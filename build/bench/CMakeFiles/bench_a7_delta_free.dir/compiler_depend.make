# Empty compiler generated dependencies file for bench_a7_delta_free.
# This may be replaced when dependencies are built.
