
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a7_delta_free.cpp" "bench/CMakeFiles/bench_a7_delta_free.dir/bench_a7_delta_free.cpp.o" "gcc" "bench/CMakeFiles/bench_a7_delta_free.dir/bench_a7_delta_free.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/ftc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/domination/CMakeFiles/ftc_domination.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/ftc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ftc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
