#!/usr/bin/env bash
# Sanitizer gate: configure a separate ASan+UBSan build tree, build
# everything, and run the full test suite under the sanitizers. Any leak,
# overflow, or UB aborts the run with a nonzero exit.
#
#   scripts/check.sh [build-dir]        (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
