#!/usr/bin/env bash
# Sanitizer gate: configure a separate sanitizer build tree, build
# everything, and run tests under the sanitizers. Any leak, overflow, UB,
# or data race aborts the run with a nonzero exit.
#
#   scripts/check.sh [build-dir]            ASan+UBSan over the full suite
#                                           (default build dir: build-asan)
#   FTC_SANITIZE=thread scripts/check.sh    TSan over the parallel round
#                                           engine tests (default build dir:
#                                           build-tsan)
#   scripts/check.sh fuzz-smoke [build-dir] short fixed-seed ftc-fuzz
#                                           campaign under ASan+UBSan
#   scripts/check.sh loss-fuzz [build-dir]  same, but every case gets a lossy
#                                           channel (--lossy): exercises the
#                                           link-impairment + transport paths
#   scripts/check.sh dynamic-fuzz [build-dir] same, but every case carries a
#                                           mutation trace (--dynamic):
#                                           exercises the dynamic-clustering
#                                           path against the DynamicOracle,
#                                           with a bench_history.jsonl
#                                           verdict line
#   scripts/check.sh perf [build-dir]       opt-in perf gate: Release-build
#                                           the whole bench fleet (simcore,
#                                           simcore_mt, transport,
#                                           obs-overhead, algo kernels),
#                                           re-run each on its committed
#                                           grid, fail on a >5% throughput
#                                           regression vs the checked-in
#                                           BENCH_*.json, and append one
#                                           line (UTC timestamp, git sha,
#                                           per-bench status) to
#                                           bench_history.jsonl. The
#                                           obs-overhead bench runs with
#                                           --perf-gate=1, so perf-mode
#                                           attribution costing >5% of the
#                                           perf-off throughput fails the
#                                           gate too; the verdict lands in
#                                           the history line as
#                                           "perf_overhead"
#                                           (default build dir: build)
#   scripts/check.sh algo-perf [build-dir]  fast algo-kernel-only gate:
#                                           bench_algo_kernels --quick (a
#                                           row-subset of the committed
#                                           grid) under the same >5% gate,
#                                           with a history line
#   scripts/check.sh selftest               verify that a failing ctest
#                                           propagates to this script's exit
#                                           code, and that bench_check.py's
#                                           own --selftest passes
#                                           (regression guard, no build)
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${FTC_SANITIZE:-address}"

# Appends one JSON line to bench_history.jsonl recording a perf-gate run:
#   {"utc": ..., "git_sha": ..., "mode": ..., "status": ..., "benches": {...}}
# The history file is append-only local state (gitignored): it accumulates a
# per-machine timeline of gate outcomes so a slow drift — each step inside
# the 5% tolerance — is still visible in one place.
# $1 = mode label, $2 = overall status, $3 = per-bench JSON fragment.
append_history() {
  local utc sha
  utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '{"utc": "%s", "git_sha": "%s", "mode": "%s", "status": "%s", "benches": {%s}}\n' \
    "$utc" "$sha" "$1" "$2" "$3" >> bench_history.jsonl
  echo "check.sh: appended $1 run ($2) to bench_history.jsonl"
}

# An explicit configure guard (on top of set -e): a failed configure must
# never fall through to a ctest that "passes" by running zero tests.
configure() {
  if ! cmake "$@"; then
    echo "check.sh: cmake configure failed — tests were NOT run" >&2
    exit 2
  fi
}

# All ctest invocations go through this wrapper so a test failure reaches the
# caller as a nonzero exit even if a later edit drops `set -e`, appends
# commands after the ctest line, or folds the call into a conditional. The
# `selftest` mode below regression-guards exactly this property.
run_ctest() {
  local status=0
  ctest "$@" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "check.sh: ctest failed (exit $status) — propagating" >&2
    exit 1
  fi
}

if [ "${1:-}" = "selftest" ]; then
  # Shim ctest with fakes and assert run_ctest propagates their exit codes.
  SHIM_DIR="$(mktemp -d)"
  trap 'rm -rf "$SHIM_DIR"' EXIT
  printf '#!/bin/sh\nexit 7\n' > "$SHIM_DIR/ctest"
  chmod +x "$SHIM_DIR/ctest"
  status=0
  (PATH="$SHIM_DIR:$PATH" run_ctest --version) >/dev/null 2>&1 || status=$?
  if [ "$status" -eq 0 ]; then
    echo "check.sh selftest: FAILED — a failing ctest did not propagate" >&2
    exit 1
  fi
  printf '#!/bin/sh\nexit 0\n' > "$SHIM_DIR/ctest"
  status=0
  (PATH="$SHIM_DIR:$PATH" run_ctest --version) >/dev/null 2>&1 || status=$?
  if [ "$status" -ne 0 ]; then
    echo "check.sh selftest: FAILED — a passing ctest reported failure" >&2
    exit 1
  fi
  echo "check.sh selftest: OK — ctest failures propagate"
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/bench_check.py --selftest
  else
    echo "check.sh selftest: python3 not found — skipping bench_check selftest"
  fi
  exit 0
fi

if [ "${1:-}" = "fuzz-smoke" ]; then
  # Short adversarial campaign under ASan+UBSan: 2000 fixed-seed cases
  # through the full invariant library (see DESIGN.md §8). Deterministic, so
  # a failure is a regression with a one-line repro, never a flake.
  BUILD_DIR="${2:-build-asan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=address
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target ftc-fuzz
  "$BUILD_DIR/tools/ftc-fuzz" run --cases=2000 --seed=1 --progress=500
  exit 0
fi

if [ "${1:-}" = "loss-fuzz" ]; then
  # The fuzz-smoke campaign with --lossy: every case runs over an impaired
  # channel (iid/burst loss, duplication, reordering, asymmetry) so the
  # channel model, the reliable transport, and the loss-aware invariants
  # (engine equivalence under lossy schedules, transport convergence) all
  # get ASan+UBSan coverage. Deterministic, like fuzz-smoke.
  BUILD_DIR="${2:-build-asan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=address
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target ftc-fuzz
  "$BUILD_DIR/tools/ftc-fuzz" run --cases=2000 --seed=1 --progress=500 --lossy
  exit 0
fi

if [ "${1:-}" = "dynamic-fuzz" ]; then
  # The fuzz-smoke campaign with --dynamic: every case carries a seed-pure
  # mutation trace (joins, departures, moves, edge flips) replayed through
  # the incremental maintenance path and checked against the DynamicOracle
  # (full re-solve, locality, bounded over-promotion, width determinism) —
  # all under ASan+UBSan. Deterministic, like fuzz-smoke; the verdict is
  # appended to bench_history.jsonl so the dynamic gate has a timeline too.
  BUILD_DIR="${2:-build-asan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=address
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target ftc-fuzz
  status=0
  "$BUILD_DIR/tools/ftc-fuzz" run --cases=2000 --seed=1 --progress=500 \
    --dynamic || status=$?
  overall=ok
  [ "$status" -ne 0 ] && overall=fail
  append_history dynamic-fuzz "$overall" "\"dynamic_fuzz\": \"$overall\""
  if [ "$status" -ne 0 ]; then
    echo "check.sh: dynamic-fuzz campaign failed — see repro line above" >&2
    exit 1
  fi
  exit 0
fi

if [ "${1:-}" = "perf" ]; then
  # Fleet perf-regression gate (opt-in: it re-runs real benchmarks, minutes
  # not seconds, and is only meaningful on a quiet machine). Every bench
  # with a committed baseline runs on its full committed grid; fresh JSON
  # goes under the build tree, the committed BENCH_*.json stay untouched.
  # All benches run even after a failure so one regression doesn't hide
  # another; the history line records each bench's verdict.
  BUILD_DIR="${2:-build}"
  configure -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_p1_simcore bench_simcore_mt bench_transport \
             bench_obs_overhead bench_algo_kernels
  # name : binary : committed baseline (binaries take the default grid).
  FLEET="simcore:bench_p1_simcore:BENCH_simcore.json
simcore_mt:bench_simcore_mt:BENCH_simcore_mt.json
transport:bench_transport:BENCH_transport.json
obs_overhead:bench_obs_overhead:BENCH_obs_overhead.json
algo:bench_algo_kernels:BENCH_algo.json"
  status=0
  bench_states=""
  while IFS=: read -r name binary baseline; do
    fresh="$BUILD_DIR/${baseline%.json}.fresh.json"
    one=0
    extra=""
    # Hard-fail the obs bench when the perf-attribution mode costs more
    # than 5% of the perf-off run (the committed --perf-gate budget).
    [ "$name" = "obs_overhead" ] && extra="--perf-gate=1"
    "$BUILD_DIR/bench/$binary" $extra --json="$fresh" || one=$?
    if [ "$one" -eq 0 ]; then
      python3 scripts/bench_check.py "$baseline" "$fresh" || one=$?
    fi
    verdict=ok
    if [ "$one" -ne 0 ]; then verdict=fail; status=1; fi
    bench_states="${bench_states:+$bench_states, }\"$name\": \"$verdict\""
  done <<< "$FLEET"
  # Record the perf-attribution overhead verdict on its own key: a fleet
  # regression and an attribution-cost blowout are different problems.
  overhead=fail
  if grep -q '"perf_within_budget": true' \
      "$BUILD_DIR/BENCH_obs_overhead.fresh.json" 2>/dev/null; then
    overhead=ok
  fi
  [ "$overhead" = "fail" ] && status=1
  bench_states="$bench_states, \"perf_overhead\": \"$overhead\""
  overall=ok
  [ "$status" -ne 0 ] && overall=fail
  append_history perf "$overall" "$bench_states"
  if [ "$status" -ne 0 ]; then
    echo "check.sh: perf gate failed — throughput regressed >5% (or a bench aborted)" >&2
    exit 1
  fi
  exit 0
fi

if [ "${1:-}" = "algo-perf" ]; then
  # Algo-kernel-only gate: seconds, not minutes. --quick runs a row-subset
  # of the committed BENCH_algo.json grid, so bench_check compares exactly
  # the overlapping rows under the same >5% tolerance.
  BUILD_DIR="${2:-build}"
  configure -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_algo_kernels
  status=0
  "$BUILD_DIR/bench/bench_algo_kernels" --quick \
    --json="$BUILD_DIR/BENCH_algo.fresh.json" || status=$?
  if [ "$status" -eq 0 ]; then
    python3 scripts/bench_check.py BENCH_algo.json \
      "$BUILD_DIR/BENCH_algo.fresh.json" || status=$?
  fi
  overall=ok
  [ "$status" -ne 0 ] && overall=fail
  append_history algo-perf "$overall" "\"algo\": \"$overall\""
  if [ "$status" -ne 0 ]; then
    echo "check.sh: algo-perf gate failed — kernel throughput regressed >5%" >&2
    exit 1
  fi
  exit 0
fi

if [ "$MODE" = "thread" ]; then
  BUILD_DIR="${1:-build-tsan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=thread
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target ftc_tests bench_p1_simcore
  # The concurrency surface: the thread pool itself, the determinism suites
  # (which drive SyncNetwork — with and without an observability plane — at
  # many widths), the reliable-transport suite (per-process ARQ state under
  # the parallel engine), and the simcore bench smoke (the parallel engine
  # against a live workload).
  run_ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'ThreadPool|ParallelDeterminism|TraceDeterminism|ReliableTransport|smoke_p1'
else
  BUILD_DIR="${1:-build-asan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=address
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  run_ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
