#!/usr/bin/env bash
# Sanitizer gate: configure a separate sanitizer build tree, build
# everything, and run tests under the sanitizers. Any leak, overflow, UB,
# or data race aborts the run with a nonzero exit.
#
#   scripts/check.sh [build-dir]            ASan+UBSan over the full suite
#                                           (default build dir: build-asan)
#   FTC_SANITIZE=thread scripts/check.sh    TSan over the parallel round
#                                           engine tests (default build dir:
#                                           build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${FTC_SANITIZE:-address}"

# An explicit configure guard (on top of set -e): a failed configure must
# never fall through to a ctest that "passes" by running zero tests.
configure() {
  if ! cmake "$@"; then
    echo "check.sh: cmake configure failed — tests were NOT run" >&2
    exit 2
  fi
}

if [ "$MODE" = "thread" ]; then
  BUILD_DIR="${1:-build-tsan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=thread
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target ftc_tests bench_p1_simcore
  # The concurrency surface: the thread pool itself, the determinism suites
  # (which drive SyncNetwork — with and without an observability plane — at
  # many widths), and the simcore bench smoke (the parallel engine against a
  # live workload).
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'ThreadPool|ParallelDeterminism|TraceDeterminism|smoke_p1'
else
  BUILD_DIR="${1:-build-asan}"
  configure -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTC_SANITIZE=address
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
