#!/usr/bin/env bash
# Regenerate BENCH_dynamic.json: Release-build the dynamic-maintenance
# benchmark and replay the standard churn workload (1e4 and 1e5 nodes,
# single-mutation batches) down both the incremental and the full-re-solve
# paths.
#
#   scripts/bench_dynamic.sh [build-dir]    (default: build)
# Extra arguments after the build dir are passed through to the bench, e.g.
#   scripts/bench_dynamic.sh build --sizes=10000 --mutations=100
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_dynamic
"$BUILD_DIR/bench/bench_dynamic" --json=BENCH_dynamic.json "$@"
