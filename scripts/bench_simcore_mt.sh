#!/usr/bin/env bash
# Regenerate BENCH_simcore_mt.json: Release-build the threads x n scaling
# benchmark and run it on the full grid (threads 1,2,4,8 x n 1e4,1e5,1e6).
#
#   scripts/bench_simcore_mt.sh [--quick] [build-dir] [bench args...]
#
# --quick shrinks the grid (threads 1,2,4 x n 1e4,1e5, fewer rounds) for a
# fast sanity pass — a couple of minutes instead of the full sweep — and
# writes the same BENCH_simcore_mt.json. Extra arguments after the build
# dir are passed through to the bench, e.g.
#   scripts/bench_simcore_mt.sh build --threads=1,2
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK_ARGS=()
if [ "${1:-}" = "--quick" ]; then
  QUICK_ARGS=(--sizes=10000,100000 --threads=1,2,4 --rounds=20)
  shift
fi

BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_simcore_mt
"$BUILD_DIR/bench/bench_simcore_mt" --json=BENCH_simcore_mt.json \
  ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} "$@"
