#!/usr/bin/env bash
# Regenerate BENCH_obs_overhead.json: Release-build the observability
# overhead benchmark and run it against the recorded BENCH_simcore.json
# baseline. The "off" rows (plane compiled in but not attached) must hold
# >= 98% of the baseline sequential rounds/sec.
#
#   scripts/bench_overhead.sh [build-dir]    (default: build)
# Extra arguments after the build dir are passed through to the bench, e.g.
#   scripts/bench_overhead.sh build --sizes=1000 --repeats=5
#
# Before committing the regenerated file, floor each row's rounds_per_sec
# over a few quiet-machine runs (and drop the per-run vs_off/budget
# verdicts) so the check.sh perf >5% gate compares against a true per-row
# floor rather than one run's noise — see "baseline_policy" in the file.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_obs_overhead
"$BUILD_DIR/bench/bench_obs_overhead" \
  --reference=BENCH_simcore.json --json=BENCH_obs_overhead.json "$@"
