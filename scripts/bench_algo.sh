#!/usr/bin/env bash
# Regenerate BENCH_algo.json: Release-build the algo kernel benchmark and
# run it on the full committed grid (coverage/deficiency n 1e5,1e6; LP
# n 2e4,2e5 at threads 1,4,8; rounding trial loop).
#
#   scripts/bench_algo.sh [--quick] [build-dir] [bench args...]
#
# --quick runs the row-subset grid (n 1e5, LP n 2e4, threads 1,4) the
# `check.sh algo-perf` gate uses — seconds instead of the full sweep — and
# writes the same BENCH_algo.json. Extra arguments after the build dir are
# passed through to the bench, e.g.
#   scripts/bench_algo.sh build --repeats=10
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK_ARGS=()
if [ "${1:-}" = "--quick" ]; then
  QUICK_ARGS=(--quick)
  shift
fi

BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_algo_kernels
"$BUILD_DIR/bench/bench_algo_kernels" --json=BENCH_algo.json \
  ${QUICK_ARGS[@]+"${QUICK_ARGS[@]}"} "$@"
