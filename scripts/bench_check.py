#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh bench JSON against the committed one.

Usage:
    bench_check.py COMMITTED.json FRESH.json [--tolerance=0.05]
    bench_check.py --selftest

Both files must be outputs of the same bench binary (BENCH_*.json shape:
a top-level object with a "results" array of flat row objects). Rows are
matched by their identity keys — every key that is not a measurement
(throughputs, timings, derived ratios). For each matched row, every
`*_per_sec` metric present in both is compared; a fresh value more than
`tolerance` below the committed one is a regression and the script exits
nonzero. Rows present on only one side produce warnings, not failures, so
grid changes don't mask real regressions on the surviving rows.

Machine context: if both files record `hardware_threads` and they differ,
the comparison is apples-to-oranges; a warning is printed (the gate still
runs — a slower machine fails loudly rather than silently passing).

`--selftest` exercises the gate against synthetic fixtures (pass, fail,
missing file, malformed JSON, no-metric baseline) and exits nonzero on any
deviation — `check.sh selftest` runs it so the gate itself is regression-
guarded.
"""

import json
import os
import sys
import tempfile

# Keys that are measurements or derived from them — never identity.
MEASUREMENT_KEYS = frozenset({
    "seconds", "rounds", "messages", "words",
    "peak_rss_mb", "allocs_per_round", "allocs_per_trial", "wall_s",
    "speedup_vs_legacy", "speedup_vs_1t", "speedup_vs_scalar",
    "speedup_vs_reference", "efficiency", "vs_off", "vs_reference",
    # Perf-attribution block and its components (bench_common.h
    # perf_attribution_json): where the time went, never which row it is.
    "phase_attribution", "coverage", "imbalance_mean", "imbalance_max",
    "perf_within_budget",
})


def identity(row):
    # Composite values (e.g. the phase_attribution object) are measurements
    # by construction and unhashable besides, so they never join the key.
    return tuple(sorted((k, v) for k, v in row.items()
                        if not k.endswith("_per_sec")
                        and k not in MEASUREMENT_KEYS
                        and not isinstance(v, (dict, list))))


def load_rows(path, role):
    """Loads one side of the comparison; exits with a one-line diagnosis
    (never a traceback) on a missing/renamed file or a malformed document."""
    if not os.path.exists(path):
        hint = (" — was the baseline renamed or not committed?"
                if role == "baseline"
                else " — did the bench run fail before writing its JSON?")
        sys.exit(f"bench_check: {role} file not found: {path}{hint}")
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"bench_check: cannot read {role} {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_check: {role} {path} is not valid JSON ({e}) — "
                 f"truncated bench output?")
    if not isinstance(doc, dict):
        sys.exit(f"bench_check: {role} {path} is not a JSON object "
                 f"(got {type(doc).__name__}) — not a BENCH_*.json file?")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_check: {role} {path} has no 'results' rows — "
                 f"not a BENCH_*.json file, or an empty bench run")
    if not any(k.endswith("_per_sec") for row in rows for k in row):
        sys.exit(f"bench_check: {role} {path} has no '*_per_sec' metric "
                 f"columns — nothing to gate on (did the bench's JSON "
                 f"schema change?)")
    return doc, {identity(r): r for r in rows}


def fmt_id(key):
    return " ".join(f"{k}={v}" for k, v in key)


def compare(committed_path, fresh_path, tolerance):
    committed_doc, committed = load_rows(committed_path, "baseline")
    fresh_doc, fresh = load_rows(fresh_path, "fresh")

    hw_old = committed_doc.get("hardware_threads")
    hw_new = fresh_doc.get("hardware_threads")
    if hw_old is not None and hw_new is not None and hw_old != hw_new:
        print(f"bench_check: WARNING hardware_threads differ "
              f"(committed {hw_old}, fresh {hw_new}) — "
              f"throughputs may not be comparable")

    regressions = []
    compared = 0
    for key, new_row in sorted(fresh.items()):
        old_row = committed.get(key)
        if old_row is None:
            print(f"bench_check: WARNING fresh row not in committed baseline: "
                  f"{fmt_id(key)}")
            continue
        for metric in sorted(new_row):
            if not metric.endswith("_per_sec") or metric not in old_row:
                continue
            old, new = float(old_row[metric]), float(new_row[metric])
            if old <= 0:
                continue
            compared += 1
            ratio = new / old
            marker = ""
            if ratio < 1.0 - tolerance:
                regressions.append((key, metric, old, new, ratio))
                marker = "  <-- REGRESSION"
            print(f"  {fmt_id(key)} {metric}: "
                  f"{old:.0f} -> {new:.0f} ({ratio:.1%} of baseline)"
                  f"{marker}")
    for key in sorted(committed):
        if key not in fresh:
            print(f"bench_check: WARNING committed row missing from fresh run: "
                  f"{fmt_id(key)}")

    if compared == 0:
        sys.exit("bench_check: no comparable *_per_sec metrics found — the "
                 "two files share no row identities (different bench, or "
                 "the grid changed completely); regenerate the baseline")
    if regressions:
        print(f"\nbench_check: FAIL — {len(regressions)} metric(s) regressed "
              f"more than {tolerance:.0%}:")
        for key, metric, old, new, ratio in regressions:
            print(f"  {fmt_id(key)} {metric}: {old:.0f} -> {new:.0f} "
                  f"({(1.0 - ratio):.1%} slower)")
        return 1
    print(f"\nbench_check: OK — {compared} metrics within {tolerance:.0%} "
          f"of {committed_path}")
    return 0


def selftest():
    """Synthetic fixtures through the real entry points; any deviation from
    the expected exit behavior fails the selftest."""
    def run(committed, fresh, tolerance=0.05):
        """Runs compare() in-process with its chatter suppressed, capturing
        SystemExit; returns the effective exit code."""
        import contextlib
        import io
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                return compare(committed, fresh, tolerance)
        except SystemExit as e:
            return e.code if isinstance(e.code, int) else 1

    failures = []

    def expect(name, got, want_fail):
        failed = (got != 0)
        if failed != want_fail:
            failures.append(f"{name}: exit={got}, expected "
                            f"{'failure' if want_fail else 'success'}")

    with tempfile.TemporaryDirectory() as d:
        def write(name, doc):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                if isinstance(doc, str):
                    f.write(doc)
                else:
                    json.dump(doc, f)
            return path

        base = write("base.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 100.0,
             "speedup_vs_scalar": 4.0},
            {"section": "x", "n": 20, "ops_per_sec": 50.0,
             "speedup_vs_scalar": 3.0},
        ]})
        same = write("same.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 99.0,
             "speedup_vs_scalar": 9.9},  # derived ratio must not affect match
            {"section": "x", "n": 20, "ops_per_sec": 51.0,
             "speedup_vs_scalar": 0.1},
        ]})
        slow = write("slow.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 80.0},
            {"section": "x", "n": 20, "ops_per_sec": 50.0},
        ]})
        subset = write("subset.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 101.0},
        ]})
        disjoint = write("disjoint.json", {"results": [
            {"section": "y", "n": 99, "ops_per_sec": 1.0},
        ]})
        no_metric = write("no_metric.json", {"results": [
            {"section": "x", "n": 10, "seconds": 1.0},
        ]})
        malformed = write("malformed.json", '{"results": [')
        not_bench = write("not_bench.json", {"hello": "world"})
        # phase_attribution blocks differ wildly between the sides (and one
        # row gains the block only on the fresh side): rows must still match
        # on their true identity, and the block itself is never compared.
        attrib_base = write("attrib_base.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 100.0,
             "phase_attribution": {"rounds": 20, "coverage": 0.99,
                                   "phases_ns_per_round": {"compute": 10.0}}},
            {"section": "x", "n": 20, "ops_per_sec": 50.0},
        ]})
        attrib_same = write("attrib_same.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 99.0,
             "phase_attribution": {"rounds": 5, "coverage": 0.42,
                                   "phases_ns_per_round": {"deliver": 7.0}}},
            {"section": "x", "n": 20, "ops_per_sec": 51.0,
             "phase_attribution": {"rounds": 20, "coverage": 1.0,
                                   "phases_ns_per_round": {}}},
        ]})
        attrib_slow = write("attrib_slow.json", {"results": [
            {"section": "x", "n": 10, "ops_per_sec": 80.0,
             "phase_attribution": {"rounds": 20, "coverage": 0.99,
                                   "phases_ns_per_round": {"compute": 10.0}}},
            {"section": "x", "n": 20, "ops_per_sec": 50.0},
        ]})

        expect("within tolerance", run(base, same), want_fail=False)
        expect("regression detected", run(base, slow), want_fail=True)
        expect("regression inside loose tolerance",
               run(base, slow, tolerance=0.5), want_fail=False)
        expect("quick row-subset", run(base, subset), want_fail=False)
        expect("disjoint grids rejected", run(base, disjoint), want_fail=True)
        expect("missing baseline", run(os.path.join(d, "renamed.json"), same),
               want_fail=True)
        expect("missing fresh", run(base, os.path.join(d, "gone.json")),
               want_fail=True)
        expect("no *_per_sec baseline", run(no_metric, same), want_fail=True)
        expect("malformed JSON", run(malformed, same), want_fail=True)
        expect("non-bench JSON", run(not_bench, same), want_fail=True)
        expect("phase_attribution excluded from identity",
               run(attrib_base, attrib_same), want_fail=False)
        expect("regression caught despite matching attribution",
               run(attrib_base, attrib_slow), want_fail=True)

    if failures:
        print("bench_check --selftest: FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench_check --selftest: OK — 12 fixtures behaved as expected")
    return 0


def main(argv):
    if "--selftest" in argv[1:]:
        return selftest()
    tolerance = 0.05
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            try:
                tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                sys.exit(f"bench_check: bad {arg} — expected a number, "
                         f"e.g. --tolerance=0.05")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    return compare(paths[0], paths[1], tolerance)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
