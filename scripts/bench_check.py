#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh bench JSON against the committed one.

Usage:
    bench_check.py COMMITTED.json FRESH.json [--tolerance=0.05]

Both files must be outputs of the same bench binary (BENCH_*.json shape:
a top-level object with a "results" array of flat row objects). Rows are
matched by their identity keys — every key that is not a measurement
(throughputs, timings, derived ratios). For each matched row, every
`*_per_sec` metric present in both is compared; a fresh value more than
`tolerance` below the committed one is a regression and the script exits
nonzero. Rows present on only one side produce warnings, not failures, so
grid changes don't mask real regressions on the surviving rows.

Machine context: if both files record `hardware_threads` and they differ,
the comparison is apples-to-oranges; a warning is printed (the gate still
runs — a slower machine fails loudly rather than silently passing).
"""

import json
import sys

# Keys that are measurements or derived from them — never identity.
MEASUREMENT_KEYS = frozenset({
    "seconds", "rounds", "messages", "words",
    "peak_rss_mb", "allocs_per_round", "wall_s",
    "speedup_vs_legacy", "speedup_vs_1t", "efficiency",
})


def identity(row):
    return tuple(sorted((k, v) for k, v in row.items()
                        if not k.endswith("_per_sec")
                        and k not in MEASUREMENT_KEYS))


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_check: cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_check: {path} has no 'results' rows")
    return doc, {identity(r): r for r in rows}


def fmt_id(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main(argv):
    tolerance = 0.05
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    committed_doc, committed = load_rows(paths[0])
    fresh_doc, fresh = load_rows(paths[1])

    hw_old = committed_doc.get("hardware_threads")
    hw_new = fresh_doc.get("hardware_threads")
    if hw_old is not None and hw_new is not None and hw_old != hw_new:
        print(f"bench_check: WARNING hardware_threads differ "
              f"(committed {hw_old}, fresh {hw_new}) — "
              f"throughputs may not be comparable")

    regressions = []
    compared = 0
    for key, new_row in sorted(fresh.items()):
        old_row = committed.get(key)
        if old_row is None:
            print(f"bench_check: WARNING fresh row not in committed baseline: "
                  f"{fmt_id(key)}")
            continue
        for metric in sorted(new_row):
            if not metric.endswith("_per_sec") or metric not in old_row:
                continue
            old, new = float(old_row[metric]), float(new_row[metric])
            if old <= 0:
                continue
            compared += 1
            ratio = new / old
            marker = ""
            if ratio < 1.0 - tolerance:
                regressions.append((key, metric, old, new, ratio))
                marker = "  <-- REGRESSION"
            print(f"  {fmt_id(key)} {metric}: "
                  f"{old:.0f} -> {new:.0f} ({ratio:.1%} of baseline)"
                  f"{marker}")
    for key in sorted(committed):
        if key not in fresh:
            print(f"bench_check: WARNING committed row missing from fresh run: "
                  f"{fmt_id(key)}")

    if compared == 0:
        sys.exit("bench_check: no comparable *_per_sec metrics found")
    if regressions:
        print(f"\nbench_check: FAIL — {len(regressions)} metric(s) regressed "
              f"more than {tolerance:.0%}:")
        for key, metric, old, new, ratio in regressions:
            print(f"  {fmt_id(key)} {metric}: {old:.0f} -> {new:.0f} "
                  f"({(1.0 - ratio):.1%} slower)")
        return 1
    print(f"\nbench_check: OK — {compared} metrics within {tolerance:.0%} "
          f"of {paths[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
