#!/usr/bin/env bash
# Reproduces every experiment (E1..E11, A1..A7) with the default
# parameters, mirroring EXPERIMENTS.md. CSVs and the console transcript
# land in results/.
#
#   scripts/reproduce_all.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"
mkdir -p "$RESULTS_DIR"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

LOG="$RESULTS_DIR/bench_transcript.txt"
: > "$LOG"

for bench in "$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bench")"
  echo "===== $name =====" | tee -a "$LOG"
  if [ "$name" = "bench_e11_kernels" ]; then
    "$bench" --benchmark_min_time=0.2 2>&1 | tee -a "$LOG"
  else
    "$bench" --csv="$RESULTS_DIR/$name.csv" 2>&1 | tee -a "$LOG"
  fi
  echo | tee -a "$LOG"
done

echo "done: tables in $LOG, CSVs in $RESULTS_DIR/"
