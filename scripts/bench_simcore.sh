#!/usr/bin/env bash
# Regenerate BENCH_simcore.json: Release-build the simulator-core benchmark
# and run it on the standard size ladder (1e3, 1e4, 1e5 nodes).
#
#   scripts/bench_simcore.sh [build-dir]    (default: build)
# Extra arguments after the build dir are passed through to the bench, e.g.
#   scripts/bench_simcore.sh build --sizes=1000 --threads=4
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_p1_simcore
"$BUILD_DIR/bench/bench_p1_simcore" --json=BENCH_simcore.json "$@"
